"""Job specifications: the unit of work the execution engine schedules.

A :class:`SimJobSpec` is a complete, self-contained description of one
simulation run — machine configuration, execution mode, problem size,
processor count and program identity.  Two properties make the engine's
process-pool fan-out and on-disk caching safe:

* a spec is **deterministic**: executing the same spec always produces
  the same result payload, byte for byte (all stochastic inputs are
  seeded from fields of the spec);
* a spec has a **stable content hash**: the SHA-256 of its canonical
  JSON form (keys sorted at every nesting level), identical across
  processes, Python versions and dict insertion orders.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.machine.config import PrototypeConfig
from repro.memory.dram import RefreshModel
from repro.utils.rng import DEFAULT_SEED, derive_seed

#: Program identifiers understood by :func:`repro.exec.jobs.execute_job`.
PROGRAM_MATMUL = "matmul"
PROGRAM_MIPS = "mips"
PROGRAM_FAULTSWEEP = "faultsweep"

#: Execution-mode values a spec may carry (ExecutionMode.value strings).
_MODES = ("serial", "simd", "mimd", "smimd")
#: Substrate engines a spec may target ("auto" must be resolved first).
_ENGINES = ("micro", "macro")


def canonical_json(obj) -> str:
    """Serialize a JSON-able object with sorted keys and no whitespace.

    The canonical form is what gets hashed, so it must be invariant under
    dict key ordering — ``sort_keys=True`` applies recursively.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash_of(obj) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def _params_pairs(params) -> tuple:
    """Normalise ``params`` input to the sorted tuple-of-pairs form.

    Accepts a mapping (``to_dict`` output) or an iterable of ``(key,
    value)`` pairs — the shape JSON gives a client that serialises the
    spec field directly, since tuples round-trip as lists.  Malformed
    pairs raise ``ValueError``/``TypeError``, which the serving layer
    maps to a 400.
    """
    if hasattr(params, "items"):
        params = params.items()
    return tuple(sorted((k, v) for k, v in params))


@dataclass(frozen=True)
class SimJobSpec:
    """One independently schedulable simulation job.

    Attributes
    ----------
    program:
        Program identity: ``"matmul"`` (the paper's matrix multiply,
        timed on either substrate) or ``"mips"`` (Table 1's straight-line
        instruction-rate measurement).
    mode:
        Execution-mode value (``"serial"``/``"simd"``/``"mimd"``/``"smimd"``).
    n, p:
        Problem size and processor count.
    added_multiplies:
        Extra inner-loop multiplies (the Figure 7 knob).
    engine:
        Resolved substrate, ``"micro"`` or ``"macro"`` (never ``"auto"``:
        resolution depends on a study's threshold, not on the job).
    seed:
        Data-set seed; the per-job RNG seed is derived from it and the
        content hash (:attr:`job_seed`).
    b_max:
        Exclusive upper bound of the uniform B values (None = calibrated
        default).
    config:
        Machine parameters.
    params:
        Extra program-specific parameters as a sorted ``(key, value)``
        tuple (kept sorted so equal parameter sets hash equally no matter
        the insertion order).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` the job runs under
        (network faults, extra-stage setting, fail-stopped PEs).  ``None``
        — the overwhelmingly common case — is omitted from the canonical
        dictionary form entirely, so fault-free specs hash exactly as
        they did before the field existed.
    trace:
        Optional :class:`~repro.obs.TraceContext` carried alongside the
        job (excluded from identity: not hashed, not compared, not part
        of :meth:`to_dict`).  Tracing observes an execution, it does not
        change the result — the same spec traced or untraced must hit
        the same cache entry and dedup to the same in-flight job.
    """

    program: str
    mode: str
    n: int
    p: int
    added_multiplies: int = 0
    engine: str = "macro"
    seed: int = DEFAULT_SEED
    b_max: int | None = None
    config: PrototypeConfig = field(default_factory=PrototypeConfig.calibrated)
    params: tuple[tuple[str, object], ...] = ()
    fault_plan: FaultPlan | None = None
    trace: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose from {_MODES}"
            )
        if self.engine not in _ENGINES:
            raise ConfigurationError(
                f"spec engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.n < 1 or self.p < 1 or self.added_multiplies < 0:
            raise ConfigurationError(
                f"invalid job geometry n={self.n} p={self.p} "
                f"m={self.added_multiplies}"
            )
        # Normalise params so construction order never changes the hash.
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical dictionary form (JSON-able, nested plain dicts)."""
        d = {
            "program": self.program,
            "mode": self.mode,
            "n": self.n,
            "p": self.p,
            "added_multiplies": self.added_multiplies,
            "engine": self.engine,
            "seed": self.seed,
            "b_max": self.b_max,
            "config": asdict(self.config),
            "params": {k: v for k, v in self.params},
        }
        if self.fault_plan is not None:
            d["fault_plan"] = self.fault_plan.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimJobSpec":
        """Rebuild a spec from :meth:`to_dict` output (any key order).

        A missing ``config`` falls back to the calibrated prototype —
        the same default the constructor applies — so hand-written specs
        (e.g. JSON posted to the serving layer) need not spell out the
        whole machine description.
        """
        if d.get("config") is None:
            config = PrototypeConfig.calibrated()
        else:
            cfg = dict(d["config"])
            cfg["refresh"] = RefreshModel(**cfg["refresh"])
            config = PrototypeConfig(**cfg)
        return cls(
            program=d["program"],
            mode=d["mode"],
            n=d["n"],
            p=d["p"],
            added_multiplies=d.get("added_multiplies", 0),
            engine=d.get("engine", "macro"),
            seed=d.get("seed", DEFAULT_SEED),
            b_max=d.get("b_max"),
            config=config,
            params=_params_pairs(d.get("params") or {}),
            fault_plan=(FaultPlan.from_dict(d["fault_plan"])
                        if d.get("fault_plan") else None),
        )

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON form of the spec."""
        return content_hash_of(self.to_dict())

    @property
    def job_seed(self) -> int:
        """Per-job RNG seed, derived from the data seed and the job hash.

        Programs needing randomness beyond their input data seed their
        :mod:`repro.utils.rng` generators from this, so a job draws the
        same stream whether it runs in-process or in a pool worker.
        """
        return derive_seed(self.seed, self.program, self.content_hash)

    def label(self) -> str:
        """Short human-readable identity for stats and error messages."""
        return (
            f"{self.program}/{self.engine} {self.mode} n={self.n} "
            f"p={self.p} m={self.added_multiplies}"
        )
