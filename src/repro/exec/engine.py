"""The execution engine facade: cache lookup, fan-out, instrumentation.

:class:`ExecutionEngine` is the handle the experiment layer routes
through.  ``run(specs)`` answers a batch of job specs in order:

1. every spec is looked up in the on-disk result cache (if configured);
2. the misses are computed — across a process pool when ``jobs > 1``,
   in-process otherwise — by the *same* :func:`repro.exec.jobs.execute_job`
   either way, so results are identical no matter the schedule;
3. fresh results are written back to the cache, and per-job wall time
   plus hit/miss counters accumulate in :class:`ExecStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import traced_execute
from repro.exec.pool import resolve_jobs, run_parallel
from repro.exec.spec import SimJobSpec
from repro.obs.tracer import TraceContext, Tracer
from repro.perf import percentile
from repro.utils.tables import format_table


@dataclass
class _ProgramStats:
    """Counters for one (program, engine) bucket."""

    jobs: int = 0
    computed: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    max_wall: float = 0.0
    resubmits: int = 0
    dedup: int = 0  #: submissions absorbed by an identical in-flight job
    walls: list[float] = field(default_factory=list)  #: per-job wall times


@dataclass
class ExecStats:
    """Engine instrumentation: cache counters and per-job wall time."""

    by_bucket: dict[str, _ProgramStats] = field(default_factory=dict)

    def _bucket(self, spec: SimJobSpec) -> _ProgramStats:
        key = f"{spec.program}/{spec.engine}"
        return self.by_bucket.setdefault(key, _ProgramStats())

    def record_hit(self, spec: SimJobSpec) -> None:
        bucket = self._bucket(spec)
        bucket.jobs += 1
        bucket.cache_hits += 1

    def record_run(self, spec: SimJobSpec, wall_seconds: float) -> None:
        bucket = self._bucket(spec)
        bucket.jobs += 1
        bucket.computed += 1
        bucket.wall_seconds += wall_seconds
        bucket.max_wall = max(bucket.max_wall, wall_seconds)
        bucket.walls.append(wall_seconds)

    def record_resubmit(self, spec: SimJobSpec) -> None:
        """Count one crashed-and-resubmitted pool job."""
        self._bucket(spec).resubmits += 1

    def record_dedup(self, spec: SimJobSpec) -> None:
        """Count one submission absorbed by an identical job.

        Used by the serving broker for single-flight coalescing (a
        duplicate of an in-flight job) and completed-job memoization —
        the same events its ``pasm_serve_submitted_total`` metric
        counts, so the ``--stats`` dedup column and ``/metrics`` stay
        consistent by construction (asserted in ``tests/test_obs_serve``).
        Deduped submissions do not count as jobs: the one computing
        submission already does.
        """
        self._bucket(spec).dedup += 1

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        """Total specs processed (cache hits + computed)."""
        return sum(b.jobs for b in self.by_bucket.values())

    @property
    def cache_hits(self) -> int:
        return sum(b.cache_hits for b in self.by_bucket.values())

    @property
    def computed(self) -> int:
        return sum(b.computed for b in self.by_bucket.values())

    @property
    def wall_seconds(self) -> float:
        return sum(b.wall_seconds for b in self.by_bucket.values())

    @property
    def resubmits(self) -> int:
        """Total crashed-and-resubmitted pool jobs."""
        return sum(b.resubmits for b in self.by_bucket.values())

    @property
    def dedup(self) -> int:
        """Total submissions absorbed by identical jobs (serving layer)."""
        return sum(b.dedup for b in self.by_bucket.values())

    def summary_table(self, *, title: str = "execution engine stats") -> str:
        """The ``--stats`` summary, rendered via repro.utils.tables.

        Column order is load-bearing: the CI cache-smoke job parses
        ``jobs``/``computed``/``cache hits`` positionally ($2/$3/$4 of
        the TOTAL row), so new columns go after those; ``resubmits``
        stays last.  The p50/p95 columns come from the per-job wall
        samples (means hide the tail — one slow MIMD job among cheap
        macro evaluations is exactly what a mean buries).
        """
        headers = ["program", "jobs", "computed", "cache hits",
                   "wall (s)", "mean (ms)", "max (ms)",
                   "p50 (ms)", "p95 (ms)", "dedup", "resubmits"]
        rows: list[tuple] = []
        all_walls: list[float] = []
        for key in sorted(self.by_bucket):
            b = self.by_bucket[key]
            all_walls.extend(b.walls)
            mean_ms = 1e3 * b.wall_seconds / b.computed if b.computed else 0.0
            rows.append((key, b.jobs, b.computed, b.cache_hits,
                         round(b.wall_seconds, 3), round(mean_ms, 2),
                         round(1e3 * b.max_wall, 2),
                         round(1e3 * percentile(b.walls, 50), 2),
                         round(1e3 * percentile(b.walls, 95), 2),
                         b.dedup, b.resubmits))
        total_mean = 1e3 * self.wall_seconds / self.computed if self.computed else 0.0
        rows.append(("TOTAL", self.jobs, self.computed, self.cache_hits,
                     round(self.wall_seconds, 3), round(total_mean, 2),
                     round(1e3 * max((b.max_wall for b in
                                      self.by_bucket.values()), default=0.0),
                           2),
                     round(1e3 * percentile(all_walls, 50), 2),
                     round(1e3 * percentile(all_walls, 95), 2),
                     self.dedup, self.resubmits))
        return format_table(headers, rows, title=title)

    def breakdown(self) -> dict[str, float]:
        """Computed wall seconds per bucket (for perf.format_breakdown)."""
        return {key: b.wall_seconds for key, b in sorted(self.by_bucket.items())}


class ExecutionEngine:
    """Scheduler + cache + stats behind one handle.

    Parameters
    ----------
    jobs:
        Worker processes for batch execution; ``None`` consults
        ``$REPRO_JOBS`` and otherwise uses one worker per available
        core; ``0``/``"auto"`` forces all cores explicitly.  ``jobs=1``
        executes in-process — the reference serial path.
    cache:
        Optional :class:`ResultCache`; ``None`` disables disk caching.
    stats:
        Optional shared :class:`ExecStats` to accumulate into.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When set, every computed
        job gets a wall-clock ``execute`` span and cache hits get
        instants; jobs carry a :class:`~repro.obs.TraceContext` into
        the pool workers, whose simulated-time per-PE lanes are merged
        back into the tracer.  ``None`` (the default) keeps the whole
        path untouched — no context attached, no per-job bookkeeping.
    """

    def __init__(
        self,
        *,
        jobs: int | str | None = None,
        cache: ResultCache | None = None,
        stats: ExecStats | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.stats = stats or ExecStats()
        self.tracer = tracer

    @property
    def eager(self) -> bool:
        """Whether prefetching batches through this engine pays off.

        True when the engine can fan out (``jobs > 1``) or persists
        results (a cache is configured).  A serial cache-less engine is
        lazy: callers should just compute on demand, exactly like the
        original single-process path.
        """
        return self.jobs > 1 or self.cache is not None

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[SimJobSpec] | Sequence[SimJobSpec]) -> list[dict]:
        """Execute a batch of specs; payloads come back in spec order."""
        specs = list(specs)
        tracer = self.tracer
        payloads: list[dict | None] = [None] * len(specs)
        pending: list[tuple[int, SimJobSpec]] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                hit = self.cache.load(spec)
                if hit is not None:
                    payloads[i] = hit
                    self.stats.record_hit(spec)
                    if tracer is not None:
                        tracer.add_instant(
                            f"cache hit {spec.label()}", proc="engine",
                            thread="cache", cat="cache",
                            args={"hash": spec.content_hash[:12]},
                        )
                    continue
            pending.append((i, spec))
        if pending:
            to_run = [spec for _, spec in pending]
            if tracer is not None:
                ctx = TraceContext(trace_id=tracer.trace_id,
                                   max_events=tracer.max_events)
                to_run = [replace(spec, trace=ctx) for spec in to_run]
            if self.jobs > 1:
                outcomes = run_parallel(
                    to_run, jobs=self.jobs,
                    on_retry=lambda retried: [
                        self.stats.record_resubmit(s) for s in retried
                    ],
                )
            else:
                outcomes = [traced_execute(spec) for spec in to_run]
            for (i, spec), outcome in zip(pending, outcomes):
                payload, wall = outcome[0], outcome[1]
                payloads[i] = payload
                self.stats.record_run(spec, wall)
                if tracer is not None:
                    # Drain time stands in for finish time on the pooled
                    # path (workers do not share the tracer clock), so a
                    # span covers at least the job's own wall interval.
                    end = tracer.clock_us()
                    tracer.add_span(
                        spec.label(), ts=max(0.0, end - wall * 1e6),
                        dur=wall * 1e6, proc="engine",
                        thread=f"job {spec.content_hash[:8]}",
                        cat="execute", args={"hash": spec.content_hash[:12]},
                    )
                    if len(outcome) > 2 and outcome[2]:
                        tracer.extend(outcome[2])
                if self.cache is not None:
                    self.cache.store(spec, payload)
        return payloads  # type: ignore[return-value]
