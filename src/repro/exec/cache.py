"""On-disk result cache keyed by job content hash + package version.

Entries live under ``<root>/<version>/<content_hash>.json`` so a package
version bump invalidates every cached result at once (the directory is
simply never consulted again).  The root defaults to ``.repro_cache/`` in
the working directory, overridable with the ``REPRO_CACHE_DIR``
environment variable.

Writes are atomic (temp file + ``os.replace``) so a crashed or
interrupted run never leaves a truncated entry; corrupt or foreign files
are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.exec.spec import SimJobSpec, content_hash_of
from repro.faults.chaos import maybe_corrupt_entry

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def _package_version() -> str:
    # Deferred import: repro/__init__ imports repro.core -> repro.exec,
    # so pulling __version__ at module-import time would be circular.
    from repro import __version__

    return __version__


class ResultCache:
    """Content-addressed JSON store for job result payloads."""

    def __init__(self, root: str | os.PathLike | None = None, *,
                 version: str | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.version = str(version) if version is not None else _package_version()

    @property
    def dir(self) -> Path:
        """The directory holding this version's entries."""
        return self.root / self.version

    def entry_path(self, spec: SimJobSpec) -> Path:
        return self.dir / f"{spec.content_hash}.json"

    # ------------------------------------------------------------------
    def load(self, spec: SimJobSpec) -> dict | None:
        """Return the cached payload for a spec, or None on any miss.

        An entry carrying a ``payload_sha256`` that does not match its
        payload (bit rot, a truncated write that still parses, chaos
        injection) is a miss too — never an error, never stale data.
        """
        try:
            entry = json.loads(self.entry_path(spec).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != self.version:
            return None
        payload = entry.get("payload")
        digest = entry.get("payload_sha256")
        if digest is not None and digest != content_hash_of(payload):
            return None
        return payload

    def store(self, spec: SimJobSpec, payload: dict) -> Path:
        """Atomically persist a payload under the spec's content hash."""
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": self.version,
            "spec": spec.to_dict(),
            "payload": payload,
            "payload_sha256": content_hash_of(payload),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)
        maybe_corrupt_entry(spec.content_hash, path)  # $REPRO_CHAOS only
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries stored for this version."""
        try:
            return sum(1 for _ in self.dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Drop every entry of this version."""
        shutil.rmtree(self.dir, ignore_errors=True)
