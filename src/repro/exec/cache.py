"""On-disk result cache keyed by job content hash + package version.

Since the fleet-serving work, this module is a thin adapter: the
actual storage — atomic payload files under ``<root>/<version>/``,
the sqlite recency index, integrity digests, LRU eviction — lives in
:class:`repro.exec.store.SharedStore`, which is safe for concurrent
writers across processes.  ``ResultCache`` binds a store root to *this
package's version* and speaks :class:`~repro.exec.spec.SimJobSpec`, so
the execution engine, the CLI and every ``pasm-serve`` instance of a
fleet dedupe through one shared store.

Entries live under ``<root>/<version>/<content_hash>.json`` so a
package version bump invalidates every cached result at once (the
directory is simply never consulted again).  The root defaults to
``.repro_cache/`` in the working directory, overridable with
``REPRO_CACHE_DIR`` (this process) or ``REPRO_STORE`` (fleet-wide
shared location; the cache-specific variable wins when both are set).

The store is optionally **size-bounded**: with ``max_mb`` (or
``$REPRO_CACHE_MAX_MB``) set, every write prunes the *whole root* —
all versions, so dead generations go first by age — evicting
least-recently-accessed entries until the total is back under the cap.
Recency is the index's ``last_access`` column, maintained on every
load; file atimes are never consulted, so eviction order is correct on
``noatime``/``relatime`` mounts.  Eviction tolerates corrupt, foreign
or concurrently-deleted files the same way loads do: skip, never fail.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.spec import SimJobSpec
from repro.exec.store import STORE_ENV, SharedStore
from repro.faults.chaos import maybe_corrupt_entry

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable bounding the cache size (megabytes, float).
CACHE_MAX_ENV = "REPRO_CACHE_MAX_MB"


def resolve_cache_max_bytes(max_mb: float | None = None) -> int | None:
    """Resolve a cache size cap: explicit ``max_mb`` > env > unbounded.

    Returns the cap in bytes, or ``None`` for unbounded.  A
    non-numeric or non-positive value raises a
    :class:`~repro.errors.ConfigurationError` naming its source.
    """
    source = f"--cache-max-mb value {max_mb!r}"
    if max_mb is None:
        env = os.environ.get(CACHE_MAX_ENV, "").strip()
        if not env:
            return None
        source = f"{CACHE_MAX_ENV} value {env!r}"
        max_mb = env
    try:
        max_mb = float(max_mb)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"invalid {source}: must be a number of megabytes"
        ) from None
    if max_mb <= 0:
        raise ConfigurationError(
            f"invalid {source}: the cache size cap must be positive"
        )
    return int(max_mb * 1024 * 1024)


def _package_version() -> str:
    # Deferred import: repro/__init__ imports repro.core -> repro.exec,
    # so pulling __version__ at module-import time would be circular.
    from repro import __version__

    return __version__


class ResultCache:
    """Content-addressed JSON store for job result payloads."""

    def __init__(self, root: str | os.PathLike | None = None, *,
                 version: str | None = None,
                 max_mb: float | None = None) -> None:
        if root is None:
            root = (os.environ.get("REPRO_CACHE_DIR")
                    or os.environ.get(STORE_ENV)
                    or DEFAULT_CACHE_DIR)
        self.version = str(version) if version is not None else _package_version()
        self.backend = SharedStore(root, version=self.version)
        self.max_bytes = resolve_cache_max_bytes(max_mb)

    @property
    def root(self) -> Path:
        return self.backend.root

    @property
    def dir(self) -> Path:
        """The directory holding this version's entries."""
        return self.backend.dir

    def entry_path(self, spec: SimJobSpec) -> Path:
        return self.backend.path_for(spec.content_hash)

    # ------------------------------------------------------------------
    def load(self, spec: SimJobSpec) -> dict | None:
        """Return the cached payload for a spec, or None on any miss.

        An entry carrying a ``payload_sha256`` that does not match its
        payload (bit rot, a truncated write that still parses, chaos
        injection) is a miss too — never an error, never stale data.
        A hit refreshes the entry's ``last_access`` recency record.
        """
        entry = self.backend.get(spec.content_hash)
        if entry is None:
            return None
        return entry.get("payload")

    def store(self, spec: SimJobSpec, payload: dict) -> Path:
        """Atomically persist a payload under the spec's content hash."""
        path = self.backend.put(spec.content_hash, payload,
                                spec_doc=spec.to_dict())
        maybe_corrupt_entry(spec.content_hash, path)  # $REPRO_CHAOS only
        if self.max_bytes is not None:
            self.prune()
        return path

    # ------------------------------------------------------------------
    # Size bounding
    def size_bytes(self) -> int:
        """Total bytes of entries under the root (all versions)."""
        return self.backend.size_bytes()

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-accessed entries until under the cap.

        Returns the number of entries evicted.  With no cap configured
        (and none passed) this is a no-op.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        return self.backend.prune(cap)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries stored for this version."""
        return self.backend.count()

    def clear(self) -> None:
        """Drop every entry of this version."""
        self.backend.clear()
