"""On-disk result cache keyed by job content hash + package version.

Entries live under ``<root>/<version>/<content_hash>.json`` so a package
version bump invalidates every cached result at once (the directory is
simply never consulted again).  The root defaults to ``.repro_cache/`` in
the working directory, overridable with the ``REPRO_CACHE_DIR``
environment variable.

Writes are atomic (temp file + ``os.replace``) so a crashed or
interrupted run never leaves a truncated entry; corrupt or foreign files
are treated as misses, never as errors.

The store is optionally **size-bounded**: with ``max_mb`` (or
``$REPRO_CACHE_MAX_MB``) set, every write prunes the *whole root* —
all versions, so dead generations go first by age — evicting
oldest-access entries until the total is back under the cap.  Access
times are maintained explicitly on load (``relatime`` mounts would
otherwise starve the signal), and eviction tolerates corrupt, foreign
or concurrently-deleted files the same way loads do: skip, never fail.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.errors import ConfigurationError
from repro.exec.spec import SimJobSpec, content_hash_of
from repro.faults.chaos import maybe_corrupt_entry

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable bounding the cache size (megabytes, float).
CACHE_MAX_ENV = "REPRO_CACHE_MAX_MB"


def resolve_cache_max_bytes(max_mb: float | None = None) -> int | None:
    """Resolve a cache size cap: explicit ``max_mb`` > env > unbounded.

    Returns the cap in bytes, or ``None`` for unbounded.  A
    non-numeric or non-positive value raises a
    :class:`~repro.errors.ConfigurationError` naming its source.
    """
    source = f"--cache-max-mb value {max_mb!r}"
    if max_mb is None:
        env = os.environ.get(CACHE_MAX_ENV, "").strip()
        if not env:
            return None
        source = f"{CACHE_MAX_ENV} value {env!r}"
        max_mb = env
    try:
        max_mb = float(max_mb)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"invalid {source}: must be a number of megabytes"
        ) from None
    if max_mb <= 0:
        raise ConfigurationError(
            f"invalid {source}: the cache size cap must be positive"
        )
    return int(max_mb * 1024 * 1024)


def _package_version() -> str:
    # Deferred import: repro/__init__ imports repro.core -> repro.exec,
    # so pulling __version__ at module-import time would be circular.
    from repro import __version__

    return __version__


class ResultCache:
    """Content-addressed JSON store for job result payloads."""

    def __init__(self, root: str | os.PathLike | None = None, *,
                 version: str | None = None,
                 max_mb: float | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.version = str(version) if version is not None else _package_version()
        self.max_bytes = resolve_cache_max_bytes(max_mb)

    @property
    def dir(self) -> Path:
        """The directory holding this version's entries."""
        return self.root / self.version

    def entry_path(self, spec: SimJobSpec) -> Path:
        return self.dir / f"{spec.content_hash}.json"

    # ------------------------------------------------------------------
    def load(self, spec: SimJobSpec) -> dict | None:
        """Return the cached payload for a spec, or None on any miss.

        An entry carrying a ``payload_sha256`` that does not match its
        payload (bit rot, a truncated write that still parses, chaos
        injection) is a miss too — never an error, never stale data.
        """
        try:
            entry = json.loads(self.entry_path(spec).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != self.version:
            return None
        payload = entry.get("payload")
        digest = entry.get("payload_sha256")
        if digest is not None and digest != content_hash_of(payload):
            return None
        if self.max_bytes is not None:
            # Keep the LRU signal honest on relatime/noatime mounts.
            try:
                os.utime(self.entry_path(spec))
            except OSError:
                pass
        return payload

    def store(self, spec: SimJobSpec, payload: dict) -> Path:
        """Atomically persist a payload under the spec's content hash."""
        path = self.entry_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": self.version,
            "spec": spec.to_dict(),
            "payload": payload,
            "payload_sha256": content_hash_of(payload),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        os.replace(tmp, path)
        maybe_corrupt_entry(spec.content_hash, path)  # $REPRO_CHAOS only
        if self.max_bytes is not None:
            self.prune()
        return path

    # ------------------------------------------------------------------
    # Size bounding
    def size_bytes(self) -> int:
        """Total bytes of entries under the root (all versions)."""
        return sum(size for _, _, size in self._entries())

    def _entries(self) -> list[tuple[float, Path, int]]:
        """``(atime, path, size)`` for every entry file under the root.

        Unstattable files (deleted by a concurrent pruner, permission
        oddities) are skipped — eviction must tolerate anything loads
        tolerate.
        """
        out = []
        try:
            paths = list(self.root.rglob("*.json"))
        except OSError:
            return []
        for path in paths:
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_atime, path, st.st_size))
        return out

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict oldest-access entries until the root fits the cap.

        Returns the number of entries evicted.  With no cap configured
        (and none passed) this is a no-op.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        if total <= cap:
            return 0
        evicted = 0
        # Oldest access first; path as tie-break keeps eviction stable.
        for atime, path, size in sorted(
            entries, key=lambda e: (e[0], str(e[1]))
        ):
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue  # raced with another pruner: already gone
            total -= size
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries stored for this version."""
        try:
            return sum(1 for _ in self.dir.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Drop every entry of this version."""
        shutil.rmtree(self.dir, ignore_errors=True)
