"""Program implementations behind the execution engine.

:func:`execute_job` is the single entry point: it is what pool workers
run *and* what the serial (``--jobs 1``) path calls in-process, so a job
produces bit-identical payloads no matter how it is scheduled.  Payloads
are plain JSON-able dictionaries (no numpy scalars), which makes them
safe to ship across process boundaries and to round-trip through the
on-disk cache.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.errors import ConfigurationError, ExecError, NetworkFaultError
from repro.exec.spec import (
    PROGRAM_FAULTSWEEP,
    PROGRAM_MATMUL,
    PROGRAM_MIPS,
    SimJobSpec,
)
from repro.faults.campaign import double_fault_sweep, single_fault_sweep
from repro.faults.plan import FaultPlan
from repro.m68k.assembler import assemble
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.machine.partition import Partition
from repro.mc import EnqueueBlock, Loop
from repro.network import CircuitSwitchedNetwork, ExtraStageCubeTopology
from repro.obs.simtrace import arm_machine, collect_machine, tracing_job
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.loader import run_matmul
from repro.timing_model import predict_matmul
from repro.utils.rng import DEFAULT_SEED

#: Table 1 measurement geometry: straight-line repetitions per block and
#: blocks per run ("large enough to make the loop control overlap
#: insignificant").
BLOCK_REPEATS = 64
BLOCKS = 8


def _num(x):
    """Collapse numpy scalars to plain Python numbers (JSON-safe)."""
    if isinstance(x, (bool, np.bool_)):
        return bool(x)
    if isinstance(x, (int, np.integer)):
        return int(x)
    return float(x)


# ---------------------------------------------------------------------------
# Spec constructors
# ---------------------------------------------------------------------------
def matmul_spec(
    mode,
    n: int,
    p: int,
    *,
    added_multiplies: int = 0,
    engine: str = "macro",
    seed: int = DEFAULT_SEED,
    b_max: int | None = None,
    config: PrototypeConfig | None = None,
    fault_plan: FaultPlan | None = None,
) -> SimJobSpec:
    """Spec for one timed matrix-multiplication configuration."""
    mode_value = mode.value if isinstance(mode, ExecutionMode) else str(mode)
    return SimJobSpec(
        program=PROGRAM_MATMUL,
        mode=mode_value,
        n=n,
        p=p,
        added_multiplies=added_multiplies,
        engine=engine,
        seed=seed,
        b_max=b_max,
        config=config or PrototypeConfig.calibrated(),
        fault_plan=fault_plan,
    )


def mips_spec(
    variant: str,
    source: str,
    *,
    config: PrototypeConfig | None = None,
) -> SimJobSpec:
    """Spec for one Table 1 instruction-rate measurement.

    ``variant`` is ``"simd"`` (broadcast from the Fetch Unit Queue) or
    ``"mimd"`` (fetched from PE main memory).
    """
    config = config or PrototypeConfig.calibrated()
    return SimJobSpec(
        program=PROGRAM_MIPS,
        mode=variant,
        n=BLOCK_REPEATS,
        p=config.n_pes,
        engine="micro",
        config=config,
        params=(("blocks", BLOCKS), ("source", source)),
    )


def faultsweep_spec(
    n_terminals: int,
    *,
    double_samples: int = 500,
    seed: int = DEFAULT_SEED,
    config: PrototypeConfig | None = None,
) -> SimJobSpec:
    """Spec for one fault-tolerance sweep of an N-terminal ESC network.

    The job exhaustively checks every single box/link fault for full
    routability with the extra stage enabled, plus a double-fault
    survival campaign (exhaustive when small, seeded sampling otherwise
    — ``double_samples`` bounds the sample size).
    """
    return SimJobSpec(
        program=PROGRAM_FAULTSWEEP,
        mode="serial",
        n=n_terminals,
        p=1,
        engine="micro",
        seed=seed,
        config=config or PrototypeConfig.calibrated(),
        params=(("double_samples", double_samples),),
    )


# ---------------------------------------------------------------------------
# Program implementations
# ---------------------------------------------------------------------------
def _check_macro_routability(spec: SimJobSpec, plan: FaultPlan) -> None:
    """Macro jobs cannot route bytes, but they must still refuse a plan
    under which the algorithm's shift permutation has no circuit setting
    (the micro engine would raise at :meth:`connect_shift_circuit`)."""
    if spec.p <= 1:
        return
    partition = Partition(spec.config, spec.p)
    topo = ExtraStageCubeTopology(spec.config.n_pes)
    network = CircuitSwitchedNetwork(
        topo,
        extra_stage_enabled=plan.extra_stage_enabled,
        faults=set(plan.network_faults()),
    )
    mapping = partition.shift_permutation()
    if not network.is_admissible(mapping):
        raise NetworkFaultError(
            f"shift permutation {mapping} has no circuit setting under "
            f"{plan.describe()}",
            faults=tuple(sorted(
                plan.network_faults(),
                key=lambda f: (f.kind.value, f.stage, f.line),
            )),
        )


def _execute_matmul(spec: SimJobSpec) -> dict:
    """Time one (mode, n, p, m) matmul configuration on either substrate."""
    mode = ExecutionMode(spec.mode)
    if mode is ExecutionMode.SERIAL and spec.p != 1:
        raise ConfigurationError("serial mode requires p == 1")
    plan = spec.fault_plan
    kwargs = {"seed": spec.seed}
    if spec.b_max is not None:
        kwargs["b_max"] = spec.b_max
    a, b = generate_matrices(spec.n, **kwargs)
    if spec.engine == "macro":
        if plan is not None and plan.failstops:
            raise ConfigurationError(
                "fail-stop simulation needs the micro engine; the macro "
                "timing model has no notion of a silent PE"
            )
        config = spec.config
        if plan is not None:
            _check_macro_routability(spec, plan)
            if plan.extra_stage_enabled:
                # Degraded operation: every byte crosses one more active
                # interchange box — charge it on the transport latency.
                config = config.with_overrides(
                    net_byte_latency=config.net_byte_latency
                    + config.net_extra_stage_cycles
                )
        pred = predict_matmul(
            mode, config, spec.n, spec.p,
            added_multiplies=spec.added_multiplies, b=b,
        )
        payload = {
            "cycles": _num(pred.cycles),
            "breakdown": {k: _num(v) for k, v in dict(pred.breakdown).items()},
            "engine": "macro",
            "verified": False,
        }
        if plan is not None:
            payload["degraded"] = plan.extra_stage_enabled
        return payload
    machine = PASMMachine(spec.config, partition_size=spec.p,
                          fault_plan=plan)
    arm_machine(machine)
    bundle = build_matmul(
        mode, spec.n, spec.p, added_multiplies=spec.added_multiplies,
        device_symbols=spec.config.device_symbols(),
    )
    run = run_matmul(machine, bundle, a, b)
    collect_machine(machine, label=f"matmul {mode.value} n={spec.n} "
                                   f"p={spec.p}")
    verified = bool(np.array_equal(run.product, expected_product(a, b)))
    if not verified:
        raise ConfigurationError(
            f"micro run {mode.value} n={spec.n} p={spec.p} produced a "
            "wrong product"
        )
    payload = {
        "cycles": _num(run.result.cycles),
        "breakdown": {k: _num(v) for k, v in run.result.breakdown().items()},
        "engine": "micro",
        "verified": True,
    }
    if plan is not None:
        payload["degraded"] = plan.extra_stage_enabled
        payload["rerouted_circuits"] = machine.rerouted_circuits
    return payload


def _mips_simd(config: PrototypeConfig, source: str, repeats: int,
               blocks: int) -> float:
    """Instructions per second across all PEs, SIMD broadcast."""
    machine = PASMMachine(config, partition_size=config.n_pes)
    arm_machine(machine)
    block = assemble(source * 1, predefined=config.device_symbols())
    instrs = block.instruction_list() * repeats
    program_blocks = {
        "meas": instrs,
        "fini": assemble("        HALT").instruction_list(),
    }
    result = machine.run_simd(
        [Loop(blocks, (EnqueueBlock("meas"),)), EnqueueBlock("fini")],
        program_blocks,
    )
    collect_machine(machine, label=f"mips simd p={config.n_pes}")
    executed = repeats * blocks * config.n_pes
    return executed / result.seconds


def _mips_mimd(config: PrototypeConfig, source: str, repeats: int,
               blocks: int) -> float:
    """Instructions per second across all PEs, MIMD from main memory."""
    machine = PASMMachine(config, partition_size=config.n_pes)
    arm_machine(machine)
    body = (source + "\n") * (repeats * blocks)
    program = assemble(
        body + "        HALT", predefined=config.device_symbols()
    )
    result = machine.run_mimd([program] * config.n_pes)
    collect_machine(machine, label=f"mips mimd p={config.n_pes}")
    # Exclude the HALT from the count, as the paper's loop control was.
    executed = repeats * blocks * config.n_pes
    halt_share = 1 / (repeats * blocks + 1)
    return executed / (result.seconds * (1 - halt_share))


def _execute_mips(spec: SimJobSpec) -> dict:
    params = dict(spec.params)
    source = params["source"]
    repeats, blocks = spec.n, params.get("blocks", BLOCKS)
    measure = _mips_simd if spec.mode == "simd" else _mips_mimd
    return {"ips": float(measure(spec.config, source, repeats, blocks))}


def _execute_faultsweep(spec: SimJobSpec) -> dict:
    """Fault-tolerance campaign over an N-terminal Extra-Stage Cube."""
    params = dict(spec.params)
    single = single_fault_sweep(spec.n)
    double = double_fault_sweep(
        spec.n,
        samples=params.get("double_samples", 500),
        seed=spec.seed,
    )
    return {"single": single.to_dict(), "double": double.to_dict()}


def _execute_test(spec: SimJobSpec) -> dict:
    """Test-support program (``program="_test"``): controlled failures.

    Actions (via ``params``): ``echo`` returns its value; ``sleep``
    holds a worker for a controllable interval (the serving tests use
    it to widen dedup/backpressure race windows); ``crash`` hard-kills
    the worker process; ``flaky`` crashes on the first execution
    (before a sentinel file exists) and succeeds on resubmit.  Only
    ever scheduled by the engine's own test suites.
    """
    params = dict(spec.params)
    action = params.get("action")
    if action == "echo":
        return {"value": params.get("value")}
    if action == "sleep":
        time.sleep(float(params.get("seconds", 0.05)))
        return {"value": params.get("value"),
                "slept": float(params.get("seconds", 0.05))}
    if action == "crash":
        os._exit(3)
    if action == "flaky":
        sentinel = params["sentinel"]
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as fh:
                fh.write("attempted\n")
            os._exit(3)
        return {"value": "recovered"}
    raise ExecError(
        f"unknown _test action {action!r}", job=spec.to_dict()
    )


_PROGRAMS = {
    PROGRAM_MATMUL: _execute_matmul,
    PROGRAM_MIPS: _execute_mips,
    PROGRAM_FAULTSWEEP: _execute_faultsweep,
    "_test": _execute_test,
}


# ---------------------------------------------------------------------------
def execute_job(spec: SimJobSpec) -> dict:
    """Execute one job and return its JSON-able result payload."""
    handler = _PROGRAMS.get(spec.program)
    if handler is None:
        raise ExecError(
            f"unknown program {spec.program!r}; choose from "
            f"{sorted(_PROGRAMS)}",
            job=spec.to_dict(),
        )
    return handler(spec)


def timed_execute(spec: SimJobSpec) -> tuple[dict, float]:
    """Execute one job, returning ``(payload, wall_seconds)``."""
    start = time.perf_counter()
    payload = execute_job(spec)
    return payload, time.perf_counter() - start


def traced_execute(spec: SimJobSpec):
    """Execute one job, honouring an attached trace context.

    The single worker-side entry point for both the process pool and the
    serving broker.  An untraced spec (``spec.trace is None`` — the
    default) behaves exactly like :func:`timed_execute` and returns the
    same 2-tuple, so the hot path pays one attribute check.  A traced
    spec re-seeds the job tracer from the carried context (this is how
    spans survive the ``spawn`` process boundary) and returns a 3-tuple
    ``(payload, wall_seconds, events)`` with the simulated-time per-PE
    lane events recorded during execution.
    """
    ctx = spec.trace
    if ctx is None or not getattr(ctx, "enabled", False):
        return timed_execute(spec)
    with tracing_job(ctx) as state:
        start = time.perf_counter()
        payload = execute_job(spec)
        wall = time.perf_counter() - start
        events = list(state.events)
        if state.dropped:
            events.append({
                "name": "events dropped", "cat": "meta", "ts": 0.0,
                "proc": "sim", "thread": "meta",
                "args": {"dropped": state.dropped},
            })
    return payload, wall, events
