"""The SIMD matrix multiplication: broadcast blocks + MC control program.

In SIMD mode "all looping and control flow instructions [execute] in the
MCs; arithmetic, data movement, and index calculation instructions are
executed on the PEs" (Section 5.1).  The PE-side code is therefore a set
of straight-line blocks registered in Fetch Unit RAM; the MC's control
program enqueues them in loop order.  The blocks reuse the exact fragments
of the MIMD version, so the instruction streams the PEs execute are the
same — minus the loop control, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.m68k.assembler import assemble
from repro.m68k.instructions import Instruction
from repro.mc import EnqueueBlock, Loop, MCOp
from repro.programs.common import (
    data_section_source,
    inner_body_source,
    layout_symbols,
    reset_tables_source,
    rotate_source,
    setup_v_source,
    xfer_element_source,
)
from repro.programs.data import MatmulLayout


#: Fixed block-id numbering for the assembly MC program's FUCTRL writes.
BLOCK_IDS = {
    0: "init",
    1: "clear",
    2: "reset",
    3: "setup_v",
    4: "body",
    5: "rotate",
    6: "xfer",
    7: "fini",
}


@dataclass(frozen=True)
class SIMDMatmul:
    """Everything needed to run the SIMD version on a machine."""

    blocks: dict[str, list[Instruction]]
    mc_program: tuple[MCOp, ...]
    data_programs: list  #: per-PE data-only programs (TT/BPTR tables)
    mc_assembly_source: str = ""  #: equivalent real-68000 MC program

    @property
    def block_ids(self) -> dict[int, str]:
        return dict(BLOCK_IDS)


def mc_assembly_source(layout: MatmulLayout, group_size: int) -> str:
    """The MC control program as real MC68000 assembly.

    Functionally identical to the DSL program built below — each
    ``MOVE.W #id,FUCTRL`` commands one block enqueue, loops are DBRA —
    so running it on the :class:`repro.mc.assembly_mc
    .AssemblyMicroController` cross-validates the DSL's cost model.
    """
    n, cols = layout.n, layout.cols
    ids = {name: i for i, name in BLOCK_IDS.items()}
    return "\n".join(
        [
            "        .org    $100",
            f"        MOVE.W  #{(1 << group_size) - 1},FUMASK",
            f"        MOVE.W  #{ids['init']},FUCTRL",
            f"        MOVE.W  #{n * cols - 1},D2",
            f"clr:    MOVE.W  #{ids['clear']},FUCTRL",
            "        DBRA    D2,clr",
            f"        MOVE.W  #{n - 1},D7",
            f"jloop:  MOVE.W  #{ids['reset']},FUCTRL",
            f"        MOVE.W  #{cols - 1},D6",
            f"vloop:  MOVE.W  #{ids['setup_v']},FUCTRL",
            f"        MOVE.W  #{n - 1},D2",
            f"kloop:  MOVE.W  #{ids['body']},FUCTRL",
            "        DBRA    D2,kloop",
            "        DBRA    D6,vloop",
            f"        MOVE.W  #{ids['rotate']},FUCTRL",
            f"        MOVE.W  #{n - 1},D2",
            f"xloop:  MOVE.W  #{ids['xfer']},FUCTRL",
            "        DBRA    D2,xloop",
            "        DBRA    D7,jloop",
            f"        MOVE.W  #{ids['fini']},FUCTRL",
            "        HALT",
        ]
    )


def _block(source: str, symbols: dict[str, int]) -> list[Instruction]:
    return assemble(source, predefined=dict(symbols)).instruction_list()


def build_simd_matmul(
    layout: MatmulLayout,
    *,
    added_multiplies: int = 0,
    device_symbols: dict[str, int],
) -> SIMDMatmul:
    """Build blocks, MC program, and per-PE data for the SIMD version."""
    n, cols = layout.n, layout.cols
    symbols = layout_symbols(layout)
    symbols.update(device_symbols)

    blocks = {
        "init": _block("        .timecat other\n        LEA CBASE,A1", symbols),
        "clear": _block("        .timecat other\n        CLR.W (A1)+", symbols),
        "reset": _block(reset_tables_source(), symbols),
        "setup_v": _block(setup_v_source(), symbols),
        "body": _block(inner_body_source(added_multiplies), symbols),
        "rotate": _block(rotate_source(layout), symbols),
        "xfer": _block(xfer_element_source(polling=False), symbols),
        "fini": _block("        .timecat control\n        HALT", symbols),
    }

    mc_program: tuple[MCOp, ...] = (
        EnqueueBlock("init"),
        Loop(n * cols, (EnqueueBlock("clear"),)),
        Loop(
            n,
            (
                EnqueueBlock("reset"),
                Loop(
                    cols,
                    (
                        EnqueueBlock("setup_v"),
                        Loop(n, (EnqueueBlock("body"),)),
                    ),
                ),
                EnqueueBlock("rotate"),
                Loop(n, (EnqueueBlock("xfer"),)),
            ),
        ),
        EnqueueBlock("fini"),
    )

    # Data-only per-PE programs: a placeholder text (never executed — the
    # PEs start in SIMD space) plus the TT/BPTR tables.
    data_programs = [
        assemble(
            f"        .org    {layout.text_base}\n"
            "        HALT\n" + data_section_source(layout, i),
            text_origin=layout.text_base,
            predefined=dict(symbols),
        )
        for i in range(layout.p)
    ]
    group_size = min(4, layout.p)  # PEs per MC group (N/Q on the prototype)
    return SIMDMatmul(
        blocks=blocks,
        mc_program=mc_program,
        data_programs=data_programs,
        mc_assembly_source=mc_assembly_source(layout, group_size),
    )
