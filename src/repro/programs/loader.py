"""Build-and-run entry points tying programs to the machine.

:func:`build_matmul` produces a :class:`MatmulBundle` for any mode;
:func:`run_matmul` loads the matrices, establishes the network circuit,
runs the machine, and returns both the timing result and the computed
product (extracted from PE memories) for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.machine import ExecutionMode, MachineResult, PASMMachine
from repro.programs.data import (
    MatmulLayout,
    assemble_result,
    load_pe_matrices,
    read_pe_result,
)
from repro.programs.parallel import build_parallel_programs
from repro.programs.serial import build_serial_program
from repro.programs.simd import SIMDMatmul, build_simd_matmul


@dataclass
class MatmulBundle:
    """A ready-to-run matrix-multiplication workload."""

    mode: ExecutionMode
    layout: MatmulLayout
    added_multiplies: int
    programs: list = field(default_factory=list)  #: per-PE (serial/MIMD/SMIMD)
    simd: SIMDMatmul | None = None
    sync_words: int = 0

    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def p(self) -> int:
        return self.layout.p


def build_matmul(
    mode: ExecutionMode,
    n: int,
    p: int,
    *,
    added_multiplies: int = 0,
    device_symbols: dict[str, int] | None = None,
) -> MatmulBundle:
    """Generate the programs for one (mode, n, p, m) configuration."""
    if mode is ExecutionMode.SERIAL and p != 1:
        raise ConfigurationError("serial mode requires p == 1")
    layout = MatmulLayout(n, p)
    symbols = device_symbols or {}
    if mode is ExecutionMode.SERIAL:
        return MatmulBundle(
            mode=mode,
            layout=layout,
            added_multiplies=added_multiplies,
            programs=[build_serial_program(layout, added_multiplies, symbols)],
        )
    if mode is ExecutionMode.SIMD:
        return MatmulBundle(
            mode=mode,
            layout=layout,
            added_multiplies=added_multiplies,
            simd=build_simd_matmul(
                layout,
                added_multiplies=added_multiplies,
                device_symbols=symbols,
            ),
        )
    barrier = mode is ExecutionMode.SMIMD
    return MatmulBundle(
        mode=mode,
        layout=layout,
        added_multiplies=added_multiplies,
        programs=build_parallel_programs(
            layout,
            added_multiplies=added_multiplies,
            barrier=barrier,
            device_symbols=symbols,
        ),
        sync_words=n if barrier else 0,
    )


@dataclass
class MatmulRun:
    """Result of executing a bundle: timing plus the computed product."""

    result: MachineResult
    product: np.ndarray
    bundle: MatmulBundle
    machine: Any = None


def run_matmul(
    machine: PASMMachine,
    bundle: MatmulBundle,
    a: np.ndarray,
    b: np.ndarray,
) -> MatmulRun:
    """Load data, run the bundle on ``machine``, extract C.

    The machine's partition size must equal the bundle's p, and the
    machine must be fresh (one run per PASMMachine instance — simulated
    time is not reset between runs).
    """
    if machine.p != bundle.p:
        raise ConfigurationError(
            f"machine partition ({machine.p}) != bundle p ({bundle.p})"
        )
    layout = bundle.layout
    for logical in range(bundle.p):
        load_pe_matrices(machine.pe(logical).memory, layout, logical, a, b)
    if bundle.p > 1:
        machine.connect_shift_circuit()

    if bundle.mode is ExecutionMode.SERIAL:
        result = machine.run_serial(bundle.programs[0])
    elif bundle.mode is ExecutionMode.MIMD:
        result = machine.run_mimd(bundle.programs)
    elif bundle.mode is ExecutionMode.SMIMD:
        result = machine.run_smimd(bundle.programs, sync_words=bundle.sync_words)
    else:
        simd = bundle.simd
        result = machine.run_simd(
            simd.mc_program, simd.blocks, data_programs=simd.data_programs
        )

    product = assemble_result(
        [read_pe_result(machine.pe(i).memory, layout) for i in range(bundle.p)]
    )
    return MatmulRun(result=result, product=product, bundle=bundle,
                     machine=machine)
