"""Shared assembly fragments for the matrix-multiplication programs.

Register conventions (identical across serial, SIMD, MIMD, S/MIMD so the
measured differences are architectural):

========  ==========================================================
D0        scratch: A element, then product
D1        the multiplier (current B element) — constant in the k loop
D2        k-loop / clear-loop / transfer-loop counter (PE-side loops)
D3, D4    receive assembly scratch
D5        poll scratch (MIMD) / added-multiply destination
D6        v-loop counter (PE-side loops)
D7        j-loop counter (PE-side loops)
A0        A-column cursor (walks n words per inner pass)
A1        C-column cursor
A2        B-element pointer (via BPTR table)
A3        TT-table walker
A4        outgoing-column cursor (network send)
A5        incoming-store cursor (network receive)
A6        BPTR-table walker
========  ==========================================================

Timing categories follow the paper's Figures 8–10 breakdown:
``mult`` = multiplication time *including related address calculation and
the C accumulate*; ``comm`` = network transfers including their loop and
polling; ``other`` = clearing C and pointer rotation; ``control`` =
PE-side loop bookkeeping (absent in SIMD, where the MC runs it);
``sync`` = S/MIMD barrier reads.
"""

from __future__ import annotations

from repro.programs.data import MatmulLayout

#: Register-convention documentation re-exported for the public API.
BODY_REGISTERS = {
    "D0": "scratch (A element, product)",
    "D1": "multiplier (current B element)",
    "D2": "k/clear/transfer loop counter",
    "D3": "receive low byte",
    "D4": "receive high byte",
    "D5": "poll scratch / added-multiply destination",
    "D6": "v loop counter",
    "D7": "j loop counter",
    "A0": "A column cursor",
    "A1": "C column cursor",
    "A2": "B element pointer",
    "A3": "TT walker",
    "A4": "send cursor",
    "A5": "receive-store cursor",
    "A6": "BPTR walker",
}


def layout_symbols(layout: MatmulLayout) -> dict[str, int]:
    """Symbols the program sources reference."""
    return {
        "ABASE": layout.a_base,
        "BBASE": layout.b_base,
        "CBASE": layout.c_base,
        "TT": layout.tt_base,
        "BPTR": layout.bptr_base,
        "COLBYTES": layout.col_bytes,
    }


def inner_body_source(added_multiplies: int) -> str:
    """The k-loop body: one real multiply-accumulate plus ``m`` added
    multiplies (the experiments' independent variable).

    The added multiplies use the same data-dependent multiplier (D1) and a
    throwaway destination, exactly "added as straight line code ... to
    study the effect on the total execution time" without changing C.
    """
    lines = [
        "        .timecat mult",
        "        MOVE.W  (A0)+,D0",
        "        MULU    D1,D0",
    ]
    lines += ["        MULU    D1,D5"] * added_multiplies
    lines += ["        ADD.W   D0,(A1)+"]
    return "\n".join(lines)


def setup_v_source() -> str:
    """Per-(j,v) setup: next A column, load the multiplier, advance BPTR."""
    return "\n".join(
        [
            "        .timecat mult",
            "        MOVEA.L (A3)+,A0",  # A0 = TT[v]
            "        MOVEA.L (A6),A2",  # A2 = BPTR[v]
            "        MOVE.W  (A2),D1",  # D1 = B element (multiplier)
            "        ADDQ.L  #2,A2",  # next rotation's row (doubled column)
            "        MOVE.L  A2,(A6)+",  # store back, walk table
        ]
    )


def reset_tables_source() -> str:
    """Per-j reset of the three walkers."""
    return "\n".join(
        [
            "        .timecat mult",
            "        LEA     TT,A3",
            "        LEA     BPTR,A6",
            "        LEA     CBASE,A1",
        ]
    )


def rotate_source(layout: MatmulLayout) -> str:
    """Rotate the TT pointer table left by one (straight-line, unrolled).

    "Within each PE, this transfer involves a single memory move, because a
    pointer to the entire column is changed rather than moving its
    elements."  The old TT[0] column becomes both the outgoing data and
    the storage slot for the incoming column (sent element k before
    receiving element k, so no element is overwritten early).
    """
    np_ = layout.cols
    lines = [
        "        .timecat other",
        "        LEA     TT,A3",
        "        MOVEA.L (A3),A4",  # outgoing column base (old TT[0])
    ]
    for v in range(np_ - 1):
        lines.append(f"        MOVE.L  {4 * (v + 1)}(A3),{4 * v}(A3)")
    if np_ > 1:
        lines.append(f"        MOVE.L  A4,{4 * (np_ - 1)}(A3)")
    lines.append("        MOVEA.L A4,A5")  # incoming store cursor
    return "\n".join(lines)


def xfer_element_source(*, polling: bool, label_prefix: str = "p") -> str:
    """One 16-bit element across the 8-bit network.

    "Each element transfer required two shift operations (one for
    transmitting and one for receiving), ... and two network operations"
    — we send low byte then high byte, and reassemble with a shift and a
    byte move.  With ``polling`` (pure MIMD), every network-register
    access is guarded by a status-register poll loop; without (SIMD and
    S/MIMD), the hardware's implicit synchronization makes transfers plain
    memory-to-memory moves.
    """
    lines = ["        .timecat comm", "        MOVE.W  (A4)+,D0"]

    def poll(bit: int, label: str) -> list[str]:
        return [
            f"{label}: MOVE.W  NETSTAT,D5",
            f"        AND.W   #{bit},D5",
            f"        BEQ     {label}",
        ]

    if polling:
        lines += poll(1, f"{label_prefix}tx1")
    lines += ["        MOVE.B  D0,NETTX"]
    lines += ["        LSR.W   #8,D0"]
    if polling:
        lines += poll(1, f"{label_prefix}tx2")
    lines += ["        MOVE.B  D0,NETTX"]
    if polling:
        lines += poll(2, f"{label_prefix}rx1")
    lines += ["        MOVE.B  NETRX,D3"]
    if polling:
        lines += poll(2, f"{label_prefix}rx2")
    lines += [
        "        MOVE.B  NETRX,D4",
        "        LSL.W   #8,D4",
        "        MOVE.B  D3,D4",
        "        MOVE.W  D4,(A5)+",
    ]
    return "\n".join(lines)


def clear_c_loop_source(layout: MatmulLayout) -> str:
    """Loop-based C clear for the serial/MIMD/S-MIMD programs."""
    words = layout.n * layout.cols
    return "\n".join(
        [
            "        .timecat other",
            "        LEA     CBASE,A1",
            f"        MOVE.W  #{(words - 1) & 0xFFFF},D2",
            "clrloop: CLR.W  (A1)+",
            "        DBRA    D2,clrloop",
        ]
    )


def data_section_source(layout: MatmulLayout, logical_pe: int) -> str:
    """The per-PE data segment: the TT and BPTR pointer tables.

    TT[v] points at A-column slot v (identical on every PE); BPTR[v]
    points at B[(vp0+v) mod n][local column v] and differs per PE — this
    is the only per-PE difference, keeping program *text* identical across
    PEs as the paper requires of its "identical asynchronous MIMD
    streams".
    """
    vp0 = layout.vp0(logical_pe)
    lines = ["        .data", f"        .org    {layout.tt_base}"]
    tt = ",".join(str(layout.a_col_addr(v)) for v in range(layout.cols))
    lines.append(f"ttvec:  .dc.l   {tt}")
    lines.append(f"        .org    {layout.bptr_base}")
    bp = ",".join(
        str(layout.b_elem_addr(vp0 + v, v)) for v in range(layout.cols)
    )
    lines.append(f"bpvec:  .dc.l   {bp}")
    return "\n".join(lines)
