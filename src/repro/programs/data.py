"""Data layout and generation for the matrix-multiplication experiments.

**Layout (paper Figure 5).**  Matrices are stored in *columnar* format:
each of the p PEs holds ``n/p`` adjacent columns of A, B and C; within a PE
a column is ``n`` consecutive 16-bit words.  Columnar storage is what lets
A's columns rotate left by a pointer change, lets B×A be computed as well
as A×B without rearrangement, and keeps I/O uniform — the reasons the
paper gives for choosing it.

Two implementation notes (documented deviations):

* B columns are stored **doubled** (each column's n words repeated twice)
  in the parallel versions.  The B-row index advances by one per rotation
  step with wraparound mod n; doubling turns the wraparound into a plain
  pointer increment, removing a compare-and-wrap from the inner setup at
  the cost of n/p · n extra words.  The serial version walks B
  sequentially and keeps single columns.
* A is the identity matrix and B uniformly random, as in the paper's
  Section 6: the MC68000 multiply time depends only on the *multiplier*
  (the B element); using the identity for A (the multiplicand) makes
  results trivially checkable without changing the timing distribution.

**B value range.**  The paper says only "a uniformly distributed random
number generator".  The number of random bits in the B values sets the
variance of ``MULU`` times and therefore the SIMD-vs-asynchronous
crossover; it is a calibration parameter (default
:data:`DEFAULT_B_BITS`), fitted so the Figure 7 crossover lands where the
paper reports it (≈14 added multiplies).  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import DEFAULT_SEED, make_rng

#: Calibrated number of random low bits in B's values (see module docs).
DEFAULT_B_BITS = 6
#: Calibrated exclusive upper bound of B's uniform values.  Overrides
#: ``b_bits`` when generating experiment data; fitted so the Figure 7
#: crossover lands at the paper's ≈14 added multiplies (n=64, p=4).
DEFAULT_B_MAX: int | None = 256


@dataclass(frozen=True)
class MatmulLayout:
    """Per-PE memory layout for an (n, p) matrix multiplication.

    Addresses are bytes in PE main memory.  The program text sits below
    ``tt_base``; the TT (A-column pointer) and BPTR (B-element pointer)
    tables sit between text and matrices.
    """

    n: int
    p: int
    text_base: int = 0x0100
    tt_base: int = 0x0C00
    bptr_base: int = 0x0E00
    a_base: int = 0x1000

    def __post_init__(self) -> None:
        if self.n < 1 or self.p < 1:
            raise ConfigurationError(f"bad problem size n={self.n}, p={self.p}")
        if self.n % self.p:
            raise ConfigurationError(
                f"n ({self.n}) must be a multiple of p ({self.p})"
            )
        if self.p > 1 and self.n < self.p:
            raise ConfigurationError(f"n ({self.n}) smaller than p ({self.p})")

    @property
    def cols(self) -> int:
        """Columns of each matrix held per PE (n/p)."""
        return self.n // self.p

    @property
    def col_bytes(self) -> int:
        """Bytes per stored column (n 16-bit words)."""
        return 2 * self.n

    @property
    def b_doubled(self) -> bool:
        """Parallel versions double B columns to avoid index wraparound."""
        return self.p > 1

    @property
    def b_col_bytes(self) -> int:
        return self.col_bytes * (2 if self.b_doubled else 1)

    @property
    def b_base(self) -> int:
        return self.a_base + self.cols * self.col_bytes

    @property
    def c_base(self) -> int:
        return self.b_base + self.cols * self.b_col_bytes

    @property
    def end(self) -> int:
        return self.c_base + self.cols * self.col_bytes

    # -- element addresses ----------------------------------------------
    def a_col_addr(self, v: int) -> int:
        return self.a_base + v * self.col_bytes

    def b_col_addr(self, v: int) -> int:
        return self.b_base + v * self.b_col_bytes

    def b_elem_addr(self, row: int, v: int) -> int:
        return self.b_col_addr(v) + 2 * row

    def c_col_addr(self, v: int) -> int:
        return self.c_base + v * self.col_bytes

    def vp0(self, logical_pe: int) -> int:
        """First global column index (= virtual PE number base) of a PE."""
        return logical_pe * self.cols


# ---------------------------------------------------------------------------
def generate_matrices(
    n: int,
    *,
    seed: int = DEFAULT_SEED,
    b_bits: int = DEFAULT_B_BITS,
    b_max: int | None = None,
    experiment: str = "matmul",
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's test data: A = identity, B uniform random.

    B's values are uniform in ``[0, b_max)`` (``b_max`` defaults to
    ``2**b_bits``, or :data:`DEFAULT_B_MAX` when set).  Returns ``(A, B)``
    as uint16 arrays of shape (n, n).  The same ``(seed, n, range)``
    always produces the same B — "the same data sets were used on all
    versions of the algorithm".
    """
    if not 0 < b_bits <= 16:
        raise ConfigurationError(f"b_bits must be in (0, 16], got {b_bits}")
    if b_max is None:
        b_max = DEFAULT_B_MAX if DEFAULT_B_MAX is not None else 1 << b_bits
    if not 1 < b_max <= 1 << 16:
        raise ConfigurationError(f"b_max must be in (1, 65536], got {b_max}")
    rng = make_rng(seed, experiment, n, b_max)
    a = np.eye(n, dtype=np.uint16)
    b = rng.integers(0, b_max, size=(n, n), dtype=np.uint16)
    return a, b


def expected_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """A×B over 16-bit unsigned integers with overflow ignored."""
    return (a.astype(np.uint32) @ b.astype(np.uint32)).astype(np.uint16)


def pe_column_slice(m: np.ndarray, layout: MatmulLayout, logical_pe: int) -> np.ndarray:
    """The (n, n/p) column block of matrix ``m`` owned by a PE."""
    lo = layout.vp0(logical_pe)
    return np.ascontiguousarray(m[:, lo : lo + layout.cols])


def load_pe_matrices(
    memory, layout: MatmulLayout, logical_pe: int, a: np.ndarray, b: np.ndarray
) -> None:
    """Write a PE's A/B column blocks into its memory; zero its C block.

    ``memory`` is a :class:`repro.memory.module.MemoryModule`.
    """
    a_cols = pe_column_slice(a, layout, logical_pe)
    b_cols = pe_column_slice(b, layout, logical_pe)
    for v in range(layout.cols):
        memory.write_words(layout.a_col_addr(v), a_cols[:, v])
        col = b_cols[:, v]
        if layout.b_doubled:
            col = np.concatenate([col, col])
        memory.write_words(layout.b_col_addr(v), col)
        memory.write_words(
            layout.c_col_addr(v), np.zeros(layout.n, dtype=np.uint16)
        )


def read_pe_result(memory, layout: MatmulLayout) -> np.ndarray:
    """Read a PE's C column block back as an (n, n/p) array."""
    cols = [
        memory.read_words(layout.c_col_addr(v), layout.n)
        for v in range(layout.cols)
    ]
    return np.stack(cols, axis=1)


def assemble_result(pe_blocks: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-PE C column blocks into the full matrix."""
    return np.concatenate(pe_blocks, axis=1)


# ---------------------------------------------------------------------------
def multiplier_schedule(b: np.ndarray, p: int) -> np.ndarray:
    """The multiplier value each PE uses at each (rotation step, column).

    Returns shape ``(p, n, n/p)``: entry ``[i, j, v]`` is the B element
    that PE *i* holds in D1 for the n inner-loop multiplications of
    rotation step *j* on local column *v* — namely
    ``B[(vp0+v+j) mod n, vp0+v]``.

    This single function feeds both engines: the micro engine realizes it
    implicitly by executing the program on the loaded data; the macro
    timing model consumes it directly, which is what makes the cross-engine
    validation exact.
    """
    n = b.shape[0]
    cols = n // p
    vp = np.arange(n)  # global column index
    j = np.arange(n)[:, None]  # rotation step
    rows = (vp[None, :] + j) % n  # (n, n): row used at step j for column vp
    sched = b[rows, vp[None, :]]  # (n_steps, n_columns)
    # split columns by PE: (p, n, cols)
    return np.stack(
        [sched[:, i * cols : (i + 1) * cols] for i in range(p)], axis=0
    )
