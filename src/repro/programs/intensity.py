"""A second workload: image intensity transform (pixel squaring).

PASM's motivating domain is image processing; this kernel computes
``out = (pixel² >> 8) & 0xFFFF`` over a strip of pixels per PE.  Unlike
matrix multiplication it needs **no communication at all**, which isolates
the paper's central effect: the multiplier of each ``MULU`` is the pixel
itself, so instruction times are data-dependent and a SIMD broadcast runs
at the per-pixel *max* across PEs while the asynchronous modes run at each
PE's own pace.  Against that stands SIMD's usual fixed advantage (queue
fetches + hidden loop control) — the same tradeoff as Figure 7, in its
purest form.

Per-pixel body (identical in all modes)::

    MOVE.W  (A0)+,D1      ; pixel (also the multiplier)
    MULU    D1,D1         ; 38 + 2·popcount(pixel) cycles
    LSR.L   #8,D1
    MOVE.W  D1,(A1)+
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.m68k.assembler import AssembledProgram, assemble
from repro.machine import ExecutionMode, MachineResult, PASMMachine
from repro.mc import EnqueueBlock, Loop, MCOp

#: Per-PE memory layout.
PIXELS_ADDR = 0x4000
OUT_ADDR = 0x8000

_BODY = """
        .timecat mult
        MOVE.W  (A0)+,D1
        MULU    D1,D1
        LSR.L   #8,D1
        MOVE.W  D1,(A1)+
"""

_INIT = f"""
        .timecat other
        LEA     {PIXELS_ADDR},A0
        LEA     {OUT_ADDR},A1
"""


@dataclass(frozen=True)
class IntensityBundle:
    """A ready-to-run intensity-transform workload."""

    mode: ExecutionMode
    p: int
    pixels_per_pe: int
    programs: tuple[AssembledProgram, ...] = ()
    blocks: dict | None = None
    mc_program: tuple[MCOp, ...] | None = None


def reference_transform(pixels: np.ndarray) -> np.ndarray:
    """The numpy oracle: (pixel² >> 8) & 0xFFFF."""
    squared = pixels.astype(np.uint32) ** 2
    return ((squared >> 8) & 0xFFFF).astype(np.uint16)


def build_intensity(
    mode: ExecutionMode, pixels_per_pe: int, p: int = 4
) -> IntensityBundle:
    """Generate the workload for one mode."""
    if pixels_per_pe < 1:
        raise ConfigurationError(
            f"need at least one pixel per PE, got {pixels_per_pe}"
        )
    if mode is ExecutionMode.SIMD:
        blocks = {
            "init": assemble(_INIT).instruction_list(),
            "body": assemble(_BODY).instruction_list(),
            "fini": assemble("    HALT").instruction_list(),
        }
        mc_program = (
            EnqueueBlock("init"),
            Loop(pixels_per_pe, (EnqueueBlock("body"),)),
            EnqueueBlock("fini"),
        )
        return IntensityBundle(
            mode=mode, p=p, pixels_per_pe=pixels_per_pe,
            blocks=blocks, mc_program=mc_program,
        )
    # Asynchronous variants: PE-side loop.  The S/MIMD variant needs no
    # barriers (there is no communication); it differs from MIMD only in
    # being eligible for them — both reduce to the same program here, and
    # we keep both mode labels for the comparison tables.
    source = "\n".join(
        [
            _INIT,
            "        .timecat control",
            f"        MOVE.W  #{pixels_per_pe - 1},D2",
            "loop:",
            _BODY,
            "        .timecat control",
            "        DBRA    D2,loop",
            "        HALT",
        ]
    )
    program = assemble(source)
    count = 1 if mode is ExecutionMode.SERIAL else p
    return IntensityBundle(
        mode=mode, p=p if mode is not ExecutionMode.SERIAL else 1,
        pixels_per_pe=pixels_per_pe,
        programs=tuple([program] * count),
    )


def run_intensity(
    machine: PASMMachine,
    bundle: IntensityBundle,
    pixels: np.ndarray,
) -> tuple[MachineResult, np.ndarray]:
    """Load pixel strips, run, and return (result, transformed pixels).

    ``pixels`` has shape (p, pixels_per_pe); the output has the same
    shape, read back from the PE memories.
    """
    if pixels.shape != (bundle.p, bundle.pixels_per_pe):
        raise ConfigurationError(
            f"pixels shape {pixels.shape} != "
            f"({bundle.p}, {bundle.pixels_per_pe})"
        )
    if machine.p != bundle.p:
        raise ConfigurationError(
            f"machine partition ({machine.p}) != bundle p ({bundle.p})"
        )
    for lp in range(bundle.p):
        machine.pe(lp).memory.write_words(
            PIXELS_ADDR, pixels[lp].astype(np.uint16)
        )
    if bundle.mode is ExecutionMode.SIMD:
        result = machine.run_simd(list(bundle.mc_program), bundle.blocks)
    elif bundle.mode is ExecutionMode.SERIAL:
        result = machine.run_serial(bundle.programs[0])
    elif bundle.mode is ExecutionMode.SMIMD:
        result = machine.run_smimd(list(bundle.programs), sync_words=1)
    else:
        result = machine.run_mimd(list(bundle.programs))
    out = np.stack(
        [
            machine.pe(lp).memory.read_words(OUT_ADDR, bundle.pixels_per_pe)
            for lp in range(bundle.p)
        ]
    )
    return result, out
