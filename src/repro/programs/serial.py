"""The optimized serial (SISD) matrix multiplication.

Runs on one PE with all n columns local.  Per the paper, the serial
program "followed a more straightforward row-column order" rather than the
parallel version's rotation: for each C/B column c, B's column is walked
sequentially and each element scales one full A column into C's column c.
The inner-loop body (and its timing categories) is byte-identical to the
parallel versions', so speed-up and efficiency comparisons are fair.
"""

from __future__ import annotations

from repro.m68k.assembler import AssembledProgram, assemble
from repro.programs.common import (
    clear_c_loop_source,
    inner_body_source,
    layout_symbols,
)
from repro.programs.data import MatmulLayout


def serial_source(layout: MatmulLayout, added_multiplies: int = 0) -> str:
    """Generate the serial program source."""
    n = layout.n
    return "\n".join(
        [
            f"        .org    {layout.text_base}",
            clear_c_loop_source(layout),
            "        .timecat control",
            "        LEA     BBASE,A2",  # B walked sequentially (not doubled)
            "        LEA     CBASE,A5",  # current C column base
            f"        MOVE.W  #{n - 1},D7",
            "cloop:  LEA     ABASE,A0",  # A walked fully per column of C
            f"        MOVE.W  #{n - 1},D6",
            "rloop:",
            "        .timecat mult",
            "        MOVE.W  (A2)+,D1",  # multiplier B[r][c]
            "        MOVEA.L A5,A1",  # C column start
            "        .timecat control",
            f"        MOVE.W  #{n - 1},D2",
            "kloop:",
            inner_body_source(added_multiplies),
            "        .timecat control",
            "        DBRA    D2,kloop",
            "        DBRA    D6,rloop",
            f"        ADDA.W  #{layout.col_bytes},A5",
            "        DBRA    D7,cloop",
            "        HALT",
        ]
    )


def build_serial_program(
    layout: MatmulLayout,
    added_multiplies: int = 0,
    extra_symbols: dict[str, int] | None = None,
) -> AssembledProgram:
    """Assemble the serial program for a size-1 partition."""
    symbols = layout_symbols(layout)
    symbols.update(extra_symbols or {})
    return assemble(
        serial_source(layout, added_multiplies),
        text_origin=layout.text_base,
        predefined=symbols,
    )
