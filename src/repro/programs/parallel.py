"""The MIMD and S/MIMD matrix-multiplication programs.

Both run the same asynchronous compute structure (Section 5.2/5.3); they
differ only in how network readiness is established:

* **MIMD** polls the status register before every network-register access
  ("the asynchronous network operations necessitated polling of the
  network buffer");
* **S/MIMD** replaces the polls with one barrier read from the SIMD
  instruction space per rotation step, re-aligning the PEs so transfers
  run as plain move instructions, "at low cost".

Program *text* is identical across PEs; per-PE differences live entirely
in the data segment (the BPTR table).
"""

from __future__ import annotations

from repro.m68k.assembler import AssembledProgram, assemble
from repro.programs.common import (
    clear_c_loop_source,
    data_section_source,
    inner_body_source,
    layout_symbols,
    reset_tables_source,
    rotate_source,
    setup_v_source,
    xfer_element_source,
)
from repro.programs.data import MatmulLayout


def parallel_source(
    layout: MatmulLayout,
    *,
    added_multiplies: int,
    barrier: bool,
    logical_pe: int,
) -> str:
    """Generate one PE's program source.

    ``barrier=False`` gives the pure-MIMD (polling) variant,
    ``barrier=True`` the S/MIMD variant.
    """
    n, cols = layout.n, layout.cols
    lines = [
        f"        .org    {layout.text_base}",
        clear_c_loop_source(layout),
        "        .timecat control",
        f"        MOVE.W  #{n - 1},D7",
        "jloop:",
        reset_tables_source(),
        "        .timecat control",
        f"        MOVE.W  #{cols - 1},D6",
        "vloop:",
        setup_v_source(),
        "        .timecat control",
        f"        MOVE.W  #{n - 1},D2",
        "kloop:",
        inner_body_source(added_multiplies),
        "        .timecat control",
        "        DBRA    D2,kloop",
        "        DBRA    D6,vloop",
        rotate_source(layout),
    ]
    if barrier:
        lines += [
            "        .timecat sync",
            "        MOVE.W  SIMDSPACE,D5",  # barrier: all PEs ready
        ]
    lines += [
        "        .timecat comm",
        f"        MOVE.W  #{n - 1},D2",
        "xloop:",
        xfer_element_source(polling=not barrier),
        "        DBRA    D2,xloop",
        "        .timecat control",
        "        DBRA    D7,jloop",
        "        HALT",
        data_section_source(layout, logical_pe),
    ]
    return "\n".join(lines)


def build_parallel_programs(
    layout: MatmulLayout,
    *,
    added_multiplies: int = 0,
    barrier: bool = False,
    device_symbols: dict[str, int],
) -> list[AssembledProgram]:
    """Assemble per-PE programs (identical text, per-PE BPTR data)."""
    symbols = layout_symbols(layout)
    symbols.update(device_symbols)
    return [
        assemble(
            parallel_source(
                layout,
                added_multiplies=added_multiplies,
                barrier=barrier,
                logical_pe=i,
            ),
            text_origin=layout.text_base,
            predefined=dict(symbols),
        )
        for i in range(layout.p)
    ]
