"""Recursive-doubling reduction: a staged-communication workload.

Computes the sum of one 16-bit value per PE, leaving the total on *every*
PE, in log₂(p) exchange stages: at stage k each PE swaps its partial with
the PE whose logical number differs in bit k, then adds.  Each stage needs
a *different* network permutation (the cube exchanges), so — unlike the
paper's matrix multiplication, which was designed to hold one circuit
setting — a circuit-switched network pays its path set-up cost at every
stage.  This workload makes the paper's "setting up a path in the PASM
prototype network is a time consuming operation" directly measurable:
compare ``run_staged_smimd(..., charge_setup=True)`` against ``False``.

The exchange is symmetric (i ↔ i XOR 2^k), which the Extra-Stage Cube
routes in one pass (it *is* a cube permutation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.m68k.assembler import AssembledProgram, assemble
from repro.machine import MachineResult, PASMMachine

#: Where each PE's value/partial lives.
VALUE_ADDR = 0x4000


def exchange_stage_source() -> str:
    """One exchange-and-add stage (identical text on every PE)."""
    return f"""
        .timecat sync
        MOVE.W  SIMDSPACE,D7        ; barrier: partners in step
        .timecat comm
        MOVE.W  {VALUE_ADDR},D0     ; my partial
        MOVE.B  D0,NETTX
        LSR.W   #8,D0
        MOVE.B  D0,NETTX
        MOVE.B  NETRX,D3
        MOVE.B  NETRX,D4
        LSL.W   #8,D4
        MOVE.B  D3,D4               ; partner's partial
        .timecat other
        ADD.W   {VALUE_ADDR},D4
        MOVE.W  D4,{VALUE_ADDR}
        HALT
    """


def build_reduction_stage(
    device_symbols: dict[str, int] | None = None,
) -> AssembledProgram:
    from repro.machine import PrototypeConfig

    symbols = device_symbols or PrototypeConfig.calibrated().device_symbols()
    return assemble(exchange_stage_source(), predefined=symbols)


def run_reduction(
    machine: PASMMachine,
    values: np.ndarray,
    *,
    charge_setup: bool = True,
) -> tuple[MachineResult, np.ndarray]:
    """Sum ``values`` (one uint16 per logical PE) across the partition.

    Returns the machine result and the per-PE totals read back (all equal
    to the 16-bit wrapped sum when it worked).
    """
    p = machine.p
    if p < 2 or p & (p - 1):
        raise ConfigurationError(f"reduction needs a power-of-two p >= 2, got {p}")
    if values.shape != (p,):
        raise ConfigurationError(
            f"need one value per PE: shape {values.shape} != ({p},)"
        )
    for lp in range(p):
        machine.pe(lp).memory.write(VALUE_ADDR, int(values[lp]), 2)

    program = build_reduction_stage(machine.config.device_symbols())
    stages = []
    for k in range(p.bit_length() - 1):
        mapping = {i: i ^ (1 << k) for i in range(p)}
        stages.append(([program] * p, mapping, 1))
    result = machine.run_staged_smimd(stages, charge_setup=charge_setup)
    totals = np.array(
        [machine.pe(lp).memory.read(VALUE_ADDR, 2) for lp in range(p)],
        dtype=np.uint16,
    )
    return result, totals
