"""The paper's application programs: matrix multiplication four ways.

Implements Section 4's O(n³/p) columnar rotation algorithm as MC68000
programs for the simulated prototype, in the paper's four variants:

* **serial** (SISD) — optimized row-column order on one PE;
* **SIMD** — straight-line broadcast blocks + an MC control program;
* **MIMD** — fully asynchronous, status-register polling for the network;
* **S/MIMD** — the MIMD program with queue-barrier synchronization
  replacing the polls.

All variants share the same inner-loop body (``MOVE/MULU/[extra MULUs]/
ADD``) and the same columnar data layout, so measured differences come
from the architecture, not the code — as in the paper.  The number of
*added multiplies* per inner loop (the experiments' independent variable)
is a generator parameter.
"""

from repro.programs.data import (
    MatmulLayout,
    expected_product,
    generate_matrices,
    multiplier_schedule,
)
from repro.programs.loader import MatmulBundle, build_matmul, run_matmul
from repro.programs.common import BODY_REGISTERS
from repro.programs.intensity import (
    IntensityBundle,
    build_intensity,
    reference_transform,
    run_intensity,
)
from repro.programs.reduction import build_reduction_stage, run_reduction

__all__ = [
    "MatmulLayout",
    "generate_matrices",
    "expected_product",
    "multiplier_schedule",
    "MatmulBundle",
    "build_matmul",
    "run_matmul",
    "BODY_REGISTERS",
    "IntensityBundle",
    "build_intensity",
    "run_intensity",
    "reference_transform",
    "build_reduction_stage",
    "run_reduction",
]
