"""The Memory Storage System: PASM's parallel secondary memory."""

from repro.mss.storage import (
    FrameRequest,
    MemoryStorageSystem,
    StorageUnit,
)

__all__ = ["MemoryStorageSystem", "StorageUnit", "FrameRequest"]
