"""Memory Storage System and double-buffered PE memories.

PASM's design pairs the Parallel Computation Unit with a **Memory Storage
System**: N/Q parallel secondary-storage units feeding the PEs'
double-buffered memory modules, so the next data set streams in while the
PEs compute on the current one.  The paper leans on this design point when
motivating the columnar data format ("Data uniformity is also desirable
to facilitate parallel I/O transfers of large data sets from secondary
memory"), and the prototype's double-buffered PE memories are what make
multi-problem pipelines profitable.

Model:

* one :class:`StorageUnit` per MC group, loading its group's PEs
  sequentially (seek latency + a per-word streaming rate), all units in
  parallel;
* each PE owns a *spare* memory bank; :meth:`MemoryStorageSystem
  .swap_bank` exchanges the PE's active memory with the spare in O(1) —
  the frame switch of the real hardware;
* :meth:`MemoryStorageSystem.load_into_spares` is a simulation process,
  so I/O genuinely overlaps PE execution in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.module import MemoryModule
from repro.sim import AllOf


@dataclass(frozen=True)
class FrameRequest:
    """One chunk of a load: ``words`` written at ``addr`` of a PE's spare."""

    logical_pe: int
    addr: int
    words: "np.ndarray"


@dataclass
class StorageUnit:
    """One parallel secondary-storage unit (serves one MC group)."""

    unit_id: int
    seek_cycles: int
    cycles_per_word: int
    words_transferred: int = 0
    busy_cycles: float = 0.0

    def transfer_time(self, n_words: int) -> float:
        return self.seek_cycles + self.cycles_per_word * n_words


class MemoryStorageSystem:
    """The MSS bound to one machine's PEs.

    Parameters
    ----------
    machine:
        A :class:`repro.machine.pasm.PASMMachine` (its partition defines
        the unit-to-PE mapping).
    seek_cycles / cycles_per_word:
        Per-request latency and streaming rate of each storage unit.
    """

    def __init__(
        self, machine, *, seek_cycles: int = 2000, cycles_per_word: int = 2
    ) -> None:
        self.machine = machine
        self.env = machine.env
        part = machine.partition
        self.units = {
            mc: StorageUnit(mc, seek_cycles, cycles_per_word)
            for mc in part.mcs
        }
        # One spare bank per PE, same size as the active memory.
        self._spares = {
            lp: MemoryModule(machine.config.ram_size)
            for lp in range(part.size)
        }
        self.swaps = 0

    # ------------------------------------------------------------------
    def spare(self, logical_pe: int) -> MemoryModule:
        """The PE's inactive bank (what loads stream into)."""
        return self._spares[logical_pe]

    def swap_bank(self, logical_pe: int) -> None:
        """Exchange the PE's active memory with its spare (the O(1) frame
        switch).  Must happen while the PE is not mid-run."""
        pe = self.machine.pe(logical_pe)
        active = pe.memory
        pe.memory = self._spares[logical_pe]
        pe.bus.memory = pe.memory
        self._spares[logical_pe] = active
        self.swaps += 1

    def swap_all(self) -> None:
        for lp in self._spares:
            self.swap_bank(lp)

    # ------------------------------------------------------------------
    def load_into_spares(self, requests: list[FrameRequest]):
        """Simulation process: stream ``requests`` into the spare banks.

        Each storage unit handles its own MC group's PEs sequentially;
        units run in parallel.  Returns (as the process's value) the
        completion time.
        """
        part = self.machine.partition
        by_unit: dict[int, list[FrameRequest]] = {mc: [] for mc in self.units}
        for req in requests:
            if not 0 <= req.logical_pe < part.size:
                raise ConfigurationError(
                    f"frame request for unknown PE {req.logical_pe}"
                )
            by_unit[part.mc_of_logical(req.logical_pe)].append(req)

        def unit_proc(unit: StorageUnit, queue: list[FrameRequest]):
            start = self.env.now
            for req in queue:
                words = np.asarray(req.words, dtype=np.uint16)
                yield self.env.timeout(unit.transfer_time(len(words)))
                self._spares[req.logical_pe].write_words(req.addr, words)
                unit.words_transferred += len(words)
            unit.busy_cycles += self.env.now - start

        procs = [
            self.env.process(unit_proc(self.units[mc], queue),
                             name=f"mss{mc}")
            for mc, queue in by_unit.items() if queue
        ]
        if not procs:
            return self.env.timeout(0)

        def waiter():
            yield AllOf(self.env, procs)
            return self.env.now

        return self.env.process(waiter(), name="mss")
