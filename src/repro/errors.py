"""Exception hierarchy for the PASM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be translated.

    Attributes
    ----------
    line_no:
        1-based source line number the error was detected on, or ``None``
        when the error is not attached to a specific line (e.g. a missing
        label discovered in pass two).
    """

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class IllegalInstructionError(ReproError):
    """Raised when the CPU interpreter encounters an unsupported operation."""


class AddressError(ReproError):
    """Raised on misaligned or out-of-range memory accesses."""


class BusError(ReproError):
    """Raised when an access targets an unmapped region of the address map."""


class NetworkError(ReproError):
    """Base class for interconnection-network errors."""


class RoutingConflictError(NetworkError):
    """Raised when two circuits demand the same network resource."""


class NetworkFaultError(NetworkError):
    """Raised when no fault-free route exists for a requested circuit.

    Attributes
    ----------
    faults:
        The active fault set when routing failed (tuple of
        :class:`~repro.network.topology.Fault`, possibly empty).
    candidates:
        The candidate paths that were examined and rejected, as tuples of
        occupied line numbers (one tuple per candidate).
    """

    def __init__(
        self,
        message: str,
        *,
        faults: tuple = (),
        candidates: tuple = (),
    ) -> None:
        self.faults = tuple(faults)
        self.candidates = tuple(candidates)
        super().__init__(message)


class PartitionError(ReproError):
    """Raised for invalid virtual-machine partitioning requests."""


class ConfigurationError(ReproError):
    """Raised when a machine or experiment configuration is inconsistent."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class DeadlockError(SimulationError):
    """Raised when the event queue empties while processes are still blocked."""


class PEFailStopError(SimulationError):
    """Raised when a fail-stopped PE prevents a run from completing.

    The machine detects the dead PE at the next synchronization point it
    poisons — a SIMD broadcast, an S/MIMD barrier, a blocking network
    transfer — via a bounded wait (:attr:`timeout` cycles past the last
    strike), so the simulation terminates with this structured error
    instead of hanging.

    Attributes
    ----------
    pes:
        Physical numbers of the PEs that had fail-stopped by detection.
    detected_at:
        Simulated time (cycles) at which the run was declared dead.
    timeout:
        The bounded wait that was applied after the last strike.
    """

    def __init__(
        self,
        message: str,
        *,
        pes: tuple[int, ...] = (),
        detected_at: float = 0.0,
        timeout: float = 0.0,
    ) -> None:
        self.pes = tuple(pes)
        self.detected_at = detected_at
        self.timeout = timeout
        super().__init__(message)


class ProgramError(ReproError):
    """Raised when a generated program is malformed or fails validation."""


class CalibrationError(ReproError):
    """Raised when calibration cannot satisfy its fitting targets."""


class ServeError(ReproError):
    """Base class for simulation-service errors (:mod:`repro.serve`)."""


class BackpressureError(ServeError):
    """Raised when the service's admission queue is full.

    The HTTP layer maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header; :attr:`retry_after` carries the suggested
    delay in seconds.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ServiceDrainingError(ServeError):
    """Raised when a submission arrives while the service is draining.

    Mapped to ``503 Service Unavailable``: the server received SIGTERM
    and is finishing in-flight work but admits nothing new.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ExecError(ReproError):
    """Raised when the execution engine cannot complete a job.

    Attributes
    ----------
    job:
        Canonical dictionary form of the failing :class:`~repro.exec.SimJobSpec`
        (``spec.to_dict()``), or ``None`` when no spec is attached.
    attempts:
        How many times the job was submitted before giving up (crashed
        workers are resubmitted once).
    cause:
        The underlying exception from the last attempt, if any.
    """

    def __init__(
        self,
        message: str,
        *,
        job: dict | None = None,
        attempts: int = 1,
        cause: BaseException | None = None,
    ) -> None:
        self.job = job
        self.attempts = attempts
        self.cause = cause
        super().__init__(message)
