"""When does the Fetch Unit Queue keep the PEs fed?

The paper's superlinearity argument has a precondition: "If the queue can
remain non-empty and non-full at all times, it should be possible to
eliminate all of the time required for the control operations."  This
module states the condition quantitatively for a steady broadcast loop
and predicts which side of it a workload falls on:

* the PEs drain one block per ``pe_cycles`` (the block's execution time);
* the MC issues one block command per ``mc_cycles`` (its loop iteration);
* the Fetch Unit Controller transfers a block in ``words × rate`` cycles.

The queue stays non-empty exactly when the PE period is the largest of
the three; otherwise the PEs stall by the difference each iteration.
Validated against the micro engine's ``empty_stall_cycles`` statistic in
``tests/test_queue_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.m68k.instructions import Instruction
from repro.machine.config import PrototypeConfig
from repro.mc import MCCostModel
from repro.timing_model.fragments import CostEnv, static_cost


@dataclass(frozen=True)
class QueueFeedPrediction:
    """Steady-state prediction for one repeated broadcast block."""

    pe_cycles: float  #: PE execution time per block (queue fetch included)
    mc_cycles: float  #: MC issue time per block (loop iteration)
    controller_cycles: float  #: Fetch Unit transfer time per block
    block_words: int

    @property
    def bottleneck(self) -> str:
        slowest = max(self.pe_cycles, self.mc_cycles, self.controller_cycles)
        if slowest == self.pe_cycles:
            return "pe"
        if slowest == self.mc_cycles:
            return "mc"
        return "controller"

    @property
    def queue_stays_nonempty(self) -> bool:
        """The paper's precondition for hiding control flow."""
        return self.bottleneck == "pe"

    @property
    def pe_stall_per_block(self) -> float:
        """Expected PE stall per iteration when the feed can't keep up."""
        return max(
            0.0,
            max(self.mc_cycles, self.controller_cycles) - self.pe_cycles,
        )

    @property
    def effective_period(self) -> float:
        return max(self.pe_cycles, self.mc_cycles, self.controller_cycles)


def predict_queue_feed(
    config: PrototypeConfig,
    block: list[Instruction],
    *,
    mul_ones: float = 0.0,
) -> QueueFeedPrediction:
    """Predict the steady state for a block broadcast in an MC loop.

    ``mul_ones`` is the expected popcount of the multiplier for any
    data-dependent multiplies in the block (their base 38 cycles are
    counted by the static analysis).
    """
    env = CostEnv.for_mode(config, simd_stream=True)
    cost = static_cost(block, env, config)
    pe_cycles = cost.cycles + 2.0 * mul_ones * cost.var_multiplies

    mc = MCCostModel(config)
    mc_cycles = mc.device_write + mc.loop_back

    words = sum(i.encoded_words() for i in block)
    controller_cycles = words * config.controller_cycles_per_word
    return QueueFeedPrediction(
        pe_cycles=pe_cycles,
        mc_cycles=mc_cycles,
        controller_cycles=controller_cycles,
        block_words=words,
    )
