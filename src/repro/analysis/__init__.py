"""Analytical companions to the simulation: operation counts, multiply-time
distributions, and first-order predictions of the paper's effects.

These closed forms serve two purposes: they document *why* the measured
curves look the way they do (O(n³/p) arithmetic vs O(n²) communication,
order statistics of the multiply time), and they cross-check the macro
model — tests assert the model agrees with them where they apply.
"""

from repro.analysis.orders import OperationCounts, count_operations
from repro.analysis.statistics import (
    mulu_cycle_pmf,
    mulu_mean_cycles,
    mulu_max_mean_cycles,
    ones_pmf_uniform_range,
)
from repro.analysis.predictions import (
    asymptotic_efficiency,
    comm_to_compute_ratio,
    predicted_crossover,
)

__all__ = [
    "OperationCounts",
    "count_operations",
    "ones_pmf_uniform_range",
    "mulu_cycle_pmf",
    "mulu_mean_cycles",
    "mulu_max_mean_cycles",
    "predicted_crossover",
    "asymptotic_efficiency",
    "comm_to_compute_ratio",
]
