"""Operation counts of the algorithm (the paper's Section 4 accounting).

"Hence, there were 2n² network accesses, n³/p multiplications, and n³/p
additions required.  This resulted in a O(n³/p) growth in execution
time."  These counts are derived here from the loop structure and are
asserted against the micro engine's instrumentation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OperationCounts:
    """Per-run operation totals for one (n, p, m) configuration."""

    n: int
    p: int
    added_multiplies: int

    def __post_init__(self) -> None:
        if self.n % self.p:
            raise ConfigurationError(
                f"n ({self.n}) must be a multiple of p ({self.p})"
            )

    # -- per PE -----------------------------------------------------------
    @property
    def multiplications_per_pe(self) -> int:
        """Real (result-producing) multiplies: n³/p."""
        return self.n**3 // self.p

    @property
    def total_multiplies_per_pe(self) -> int:
        """Including the experiment's added multiplies."""
        return self.multiplications_per_pe * (1 + self.added_multiplies)

    @property
    def additions_per_pe(self) -> int:
        return self.n**3 // self.p

    @property
    def inner_iterations_per_pe(self) -> int:
        return self.n**3 // self.p

    @property
    def elements_sent_per_pe(self) -> int:
        """One column (n elements) per rotation step, n steps."""
        return self.n * self.n if self.p > 1 else 0

    @property
    def network_byte_ops_per_pe(self) -> int:
        """Two 8-bit network operations per 16-bit element."""
        return 2 * self.elements_sent_per_pe

    # -- machine-wide -------------------------------------------------------
    @property
    def network_accesses_total(self) -> int:
        """The paper's 2n² count: element transfer slots across the run
        (each slot moves p values simultaneously, one per PE)."""
        return 2 * self.n**2 if self.p > 1 else 0

    @property
    def barrier_count(self) -> int:
        """S/MIMD barriers: one per rotation step."""
        return self.n if self.p > 1 else 0

    def arithmetic_to_communication_ratio(self) -> float:
        """O(n³/p) / O(n²): grows linearly in n/p — why all curves converge
        and efficiency rises with problem size."""
        if self.p == 1:
            return float("inf")
        return self.multiplications_per_pe / self.network_accesses_total


def count_operations(n: int, p: int, added_multiplies: int = 0) -> OperationCounts:
    """Convenience constructor."""
    return OperationCounts(n=n, p=p, added_multiplies=added_multiplies)
