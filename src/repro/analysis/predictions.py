"""First-order predictions of the paper's effects.

These are back-of-envelope models — intentionally simpler than
:mod:`repro.timing_model` — that explain the measured behaviour in a few
terms.  Tests check that the full model lands near them, which guards both
against regressions in the model and against the analysis drifting from
the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.statistics import (
    mulu_max_mean_cycles,
    mulu_mean_cycles,
    ones_std,
)
from repro.machine.config import PrototypeConfig


@dataclass(frozen=True)
class CrossoverPrediction:
    """Decomposition of the first-order crossover estimate."""

    fixed_advantage_per_iteration: float
    benefit_per_multiply: float

    @property
    def crossover(self) -> float:
        if self.benefit_per_multiply <= 0:
            return float("inf")
        return self.fixed_advantage_per_iteration / self.benefit_per_multiply


def predicted_crossover(
    config: PrototypeConfig,
    *,
    b_max: int,
    p: int = 4,
    cols: int = 16,
) -> CrossoverPrediction:
    """First-order estimate of the Figure 7 crossover.

    SIMD's fixed advantage per inner-loop iteration: the PE-side loop
    control it hides (a taken DBRA) plus the wait-state saving on the
    body's instruction-stream words (≈3 words) plus the refresh exposure.

    The benefit per added multiply: the max-vs-own gap of the multiply
    time, minus the asynchronous fetch penalty of the multiply itself,
    minus the share of the gap that the per-rotation-step barrier
    re-coupling claws back (≈ 2.06·σ/√cols cycles, the expected max of p
    near-normal step sums).
    """
    ws_gain = config.ws_main - config.ws_queue
    refresh = config.refresh.average_stall_per_access
    dbra_taken = 10 + 2 * config.ws_main + refresh
    body_stream_words = 3
    fixed = dbra_taken + body_stream_words * ws_gain + 2 * refresh

    gap = mulu_max_mean_cycles(b_max, p) - mulu_mean_cycles(b_max)
    fetch_penalty = ws_gain + refresh
    recoupling = 2.06 * ones_std(b_max) / (cols**0.5)
    benefit = gap - fetch_penalty - recoupling
    return CrossoverPrediction(
        fixed_advantage_per_iteration=fixed,
        benefit_per_multiply=benefit,
    )


def comm_to_compute_ratio(n: int, p: int) -> float:
    """O(n²) communication over O(n³/p) computation — falls as n grows,
    which is why all three parallel curves converge (Figure 6) and
    efficiency rises with problem size (Figure 11)."""
    return (2 * n * n) / (n**3 / p)


def asymptotic_efficiency(
    config: PrototypeConfig, *, b_max: int, mode: str, p: int = 4
) -> float:
    """n→∞ efficiency limit from per-inner-iteration costs alone.

    As n grows the O(n²) communication and O(n·…) bookkeeping vanish
    relative to the O(n³/p) inner loop, so efficiency tends to the ratio
    of serial to parallel *per-iteration* cost.  ``mode`` is ``"simd"``,
    ``"smimd"``, or ``"mimd"`` (the latter two share a limit — they differ
    only in communication, which vanishes).
    """
    ws = config.ws_main
    refresh = config.refresh.average_stall_per_access
    # Inner body: MOVE.W (A0)+,D0 / MULU D1,D0 / ADD.W D0,(A1)+ (+DBRA).
    move = 8 + 2 * ws + 2 * refresh
    add = 12 + 3 * ws + 3 * refresh
    dbra = 10 + 2 * ws + refresh
    mul_own = mulu_mean_cycles(b_max) + ws + refresh
    serial_iter = move + add + dbra + mul_own

    if mode == "simd":
        ws_q = config.ws_queue
        move_q = 8 + 1 * ws_q + 1 * ws + 2 * refresh / 2
        add_q = 12 + 1 * ws_q + 2 * ws + refresh
        mul_q = mulu_max_mean_cycles(b_max, min(p, 4)) + ws_q
        return serial_iter / (move_q + add_q + mul_q)
    if mode in ("smimd", "mimd"):
        return serial_iter / (move + add + dbra + mul_own)
    raise ValueError(f"unknown mode {mode!r}")
