"""Exact distributions of the data-dependent multiply time.

``MULU`` takes ``38 + 2·ones(multiplier)`` cycles.  For multipliers
uniform over an arbitrary range ``[0, b_max)`` (not necessarily a power of
two) the ones-count pmf is computed exactly by enumeration, and from it
the mean and the expected per-broadcast maximum over p PEs — the two
numbers that set the decoupling economics.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.utils.bitops import ones_count, transitions_count


@lru_cache(maxsize=None)
def ones_pmf_uniform_range(b_max: int) -> tuple[np.ndarray, np.ndarray]:
    """(support, pmf) of popcount(X) for X uniform over [0, b_max)."""
    if not 1 < b_max <= 1 << 16:
        raise ValueError(f"b_max must be in (1, 65536], got {b_max}")
    values = np.arange(b_max, dtype=np.uint64)
    counts = np.bincount(ones_count(values, 16), minlength=17)
    pmf = counts / counts.sum()
    support = np.arange(17)
    mask = pmf > 0
    return support[mask], pmf[mask]


@lru_cache(maxsize=None)
def transitions_pmf_uniform_range(b_max: int) -> tuple[np.ndarray, np.ndarray]:
    """(support, pmf) of the MULS timing count for X uniform over [0, b_max).

    The MULS count is the number of 01/10 patterns in the multiplier with
    a zero appended at the least-significant end — the signed multiply's
    analogue of the popcount.
    """
    if not 1 < b_max <= 1 << 16:
        raise ValueError(f"b_max must be in (1, 65536], got {b_max}")
    values = np.arange(b_max, dtype=np.uint64)
    counts = np.bincount(transitions_count(values, 16), minlength=18)
    pmf = counts / counts.sum()
    support = np.arange(len(pmf))
    mask = pmf > 0
    return support[mask], pmf[mask]


def mulu_cycle_pmf(b_max: int) -> tuple[np.ndarray, np.ndarray]:
    """(cycles, probability) of the MULU execution time for uniform data."""
    support, pmf = ones_pmf_uniform_range(b_max)
    return 38 + 2 * support, pmf


def mulu_mean_cycles(b_max: int) -> float:
    """Mean MULU time for uniform multipliers in [0, b_max)."""
    cycles, pmf = mulu_cycle_pmf(b_max)
    return float(np.dot(cycles, pmf))


def mulu_max_mean_cycles(b_max: int, p: int) -> float:
    """E[max over p PEs] of the MULU time (exact order statistic)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    support, pmf = ones_pmf_uniform_range(b_max)
    cdf = np.cumsum(pmf)
    cdf_prev = np.concatenate([[0.0], cdf[:-1]])
    max_pmf = cdf**p - cdf_prev**p
    return float(np.dot(38 + 2 * support, max_pmf))


def ones_std(b_max: int) -> float:
    """Standard deviation of the multiplier popcount."""
    support, pmf = ones_pmf_uniform_range(b_max)
    mean = float(np.dot(support, pmf))
    return float(np.sqrt(np.dot((support - mean) ** 2, pmf)))


def mul_count_stats(b_max: int, op: str = "MULU", p: int = 1):
    """(mean, std, E[max over p]) of the multiply *count* (ones or
    transitions) for uniform multipliers — one call serving both MULU and
    MULS studies."""
    if op == "MULU":
        support, pmf = ones_pmf_uniform_range(b_max)
    elif op == "MULS":
        support, pmf = transitions_pmf_uniform_range(b_max)
    else:
        raise ValueError(f"op must be MULU or MULS, got {op!r}")
    mean = float(np.dot(support, pmf))
    std = float(np.sqrt(np.dot((support - mean) ** 2, pmf)))
    cdf = np.cumsum(pmf)
    cdf_prev = np.concatenate([[0.0], cdf[:-1]])
    emax = float(np.dot(support, cdf**p - cdf_prev**p))
    return mean, std, emax
