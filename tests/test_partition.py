"""Partitioning tests: logical/physical maps and network admissibility."""

import pytest

from repro.errors import PartitionError
from repro.machine import Partition, PrototypeConfig
from repro.network import CircuitSwitchedNetwork, ExtraStageCubeTopology


CFG = PrototypeConfig()


class TestMapping:
    def test_p4_uses_one_mc(self):
        part = Partition(CFG, 4)
        assert part.mcs == [0]
        assert [part.physical_pe(i) for i in range(4)] == [0, 4, 8, 12]

    def test_p8_uses_two_mcs(self):
        part = Partition(CFG, 8)
        assert part.mcs == [0, 1]
        # logical 0..3 on MC0, 4..7 on MC1 (blocked mapping)
        assert [part.physical_pe(i) for i in range(8)] == [
            0, 4, 8, 12, 1, 5, 9, 13
        ]

    def test_p16_uses_all_mcs(self):
        part = Partition(CFG, 16)
        assert part.mcs == [0, 1, 2, 3]
        phys = [part.physical_pe(i) for i in range(16)]
        assert sorted(phys) == list(range(16))

    def test_roundtrip_logical_physical(self):
        for size in (4, 8, 16):
            part = Partition(CFG, size)
            for logical in range(size):
                assert part.logical_pe(part.physical_pe(logical)) == logical

    def test_mc_of_logical_matches_config_rule(self):
        part = Partition(CFG, 8)
        for logical in range(8):
            phys = part.physical_pe(logical)
            assert part.mc_of_logical(logical) == phys % CFG.n_mcs

    def test_logical_pes_of_mc_are_blocked(self):
        part = Partition(CFG, 8)
        assert part.logical_pes_of_mc(0) == [0, 1, 2, 3]
        assert part.logical_pes_of_mc(1) == [4, 5, 6, 7]

    def test_second_partition_offset(self):
        part = Partition(CFG, 4, first_mc=2)
        assert part.mcs == [2]
        assert [part.physical_pe(i) for i in range(4)] == [2, 6, 10, 14]

    def test_serial_partition(self):
        part = Partition(CFG, 1)
        assert part.physical_pe(0) == 0

    def test_physical_not_in_partition_rejected(self):
        part = Partition(CFG, 4)
        with pytest.raises(PartitionError):
            part.logical_pe(1)  # PE 1 belongs to MC1

    def test_invalid_sizes(self):
        with pytest.raises(PartitionError):
            Partition(CFG, 3)
        with pytest.raises(PartitionError):
            Partition(CFG, 32)
        with pytest.raises(PartitionError):
            Partition(CFG, 2)  # smaller than an MC group
        with pytest.raises(PartitionError):
            Partition(CFG, 16, first_mc=1)  # doesn't fit


class TestShiftAdmissibility:
    """The algorithm holds one circuit setting for its entire run; that
    setting must be conflict-free for every experimental configuration."""

    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_shift_routes_in_one_setting(self, size):
        part = Partition(CFG, size)
        net = CircuitSwitchedNetwork(ExtraStageCubeTopology(CFG.n_pes))
        assert net.is_admissible(part.shift_permutation())

    @pytest.mark.parametrize("first_mc", [0, 1, 2, 3])
    def test_shift_admissible_in_any_mc_slot(self, first_mc):
        part = Partition(CFG, 4, first_mc=first_mc)
        net = CircuitSwitchedNetwork(ExtraStageCubeTopology(CFG.n_pes))
        assert net.is_admissible(part.shift_permutation())

    def test_two_partitions_coexist(self):
        """Independent virtual machines share the network fabric."""
        part_a = Partition(CFG, 4, first_mc=0)
        part_b = Partition(CFG, 4, first_mc=1)
        net = CircuitSwitchedNetwork(ExtraStageCubeTopology(CFG.n_pes))
        both = dict(part_a.shift_permutation())
        both.update(part_b.shift_permutation())
        assert net.is_admissible(both)

    def test_shift_permutation_shape(self):
        part = Partition(CFG, 4)
        perm = part.shift_permutation()
        # logical i -> i-1: physical 0->12, 4->0, 8->4, 12->8
        assert perm == {0: 12, 4: 0, 8: 4, 12: 8}
