"""Acceptance: the fleet health layer end to end.

A real two-instance fleet behind a real router, sampled fast: the
timeseries endpoints fill and stay monotone, induced queue saturation
flips the error-ratio SLO to firing, the page produces a
flight-recorder bundle that contains the offending (shed) request's
correlation ID, and ``pasm-top --once`` renders the whole thing.
"""

import glob
import json
import time
import urllib.error
import urllib.request
import uuid

import pytest

from repro.exec import SimJobSpec
from repro.serve import RouterConfig, RouterThread, ServeConfig, ServerThread
from repro.tools.top import main as top_main

#: Fast enough that both SLO windows fill within a few seconds of test.
SAMPLE_S = 0.1
FAST_WINDOW_S = 0.8
SLOW_WINDOW_S = 2.5


def echo_spec(value):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "echo"), ("value", value)))


def sleep_spec(value, seconds):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "sleep"), ("value", value),
                              ("seconds", seconds)))


def get_json(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return json.loads(reply.read())


def post_job(base, spec, *, request_id=None, timeout=10.0):
    """POST one submission; returns (status, reply-headers, body-doc)."""
    request = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps({"spec": spec.to_dict()}).encode(),
        headers={"Content-Type": "application/json",
                 **({"X-Request-ID": request_id} if request_id else {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), json.loads(body or b"{}")


@pytest.fixture(scope="class")
def fleet(request, tmp_path_factory):
    """Two fast-sampling instances + router, recorder dirs per instance."""
    recorder_dirs = []
    servers = []
    for name in ("alpha", "beta"):
        rec_dir = tmp_path_factory.mktemp(f"flightrec-{name}")
        recorder_dirs.append(str(rec_dir))
        servers.append(ServerThread(ServeConfig(
            port=0, jobs=1, queue_limit=2, instance=name,
            no_cache=True,  # warm hits would bypass the queue entirely
            sample_interval_s=SAMPLE_S,
            heartbeat_interval_s=0.0,
            slo_fast_window_s=FAST_WINDOW_S,
            slo_slow_window_s=SLOW_WINDOW_S,
            slo_resolve_after=2,
            recorder_dir=str(rec_dir),
        )))
    for server in servers:
        server.start()
    bases = [f"http://127.0.0.1:{s.port}" for s in servers]
    router = RouterThread(RouterConfig(
        instances=tuple(bases), port=0, upstream_timeout_s=60.0,
        sample_interval_s=SAMPLE_S,
    ))
    router.start()
    request.cls.servers = servers
    request.cls.bases = bases
    request.cls.recorder_dirs = recorder_dirs
    request.cls.router = router
    request.cls.router_base = f"http://127.0.0.1:{router.port}"
    yield
    router.stop()
    for server in servers:
        server.stop()


@pytest.mark.usefixtures("fleet")
class TestFleetHealth:
    servers: list
    bases: list
    recorder_dirs: list
    router: RouterThread
    router_base: str

    # -- timeseries --------------------------------------------------
    def test_instance_timeseries_fills_and_stays_monotone(self):
        post_job(self.bases[0], echo_spec("warm-the-counters"))
        deadline = time.time() + 10.0
        doc = {}
        while time.time() < deadline:
            doc = get_json(f"{self.bases[0]}/v1/timeseries")
            if doc["samples_taken"] >= 5 and any(
                    k.startswith("pasm_serve_requests_total")
                    for k in doc["series"]):
                break
            time.sleep(0.2)
        assert doc["samples_taken"] >= 5
        assert doc["interval_s"] == SAMPLE_S
        assert doc["instance"] == "alpha"
        series = doc["series"]
        assert series, "sampler produced no series"
        assert any(k.startswith("pasm_serve_requests_total")
                   for k in series)
        assert any(k.startswith("pasm_process_") for k in series)
        for key, entry in series.items():
            stamps = [t for t, _ in entry["points"]]
            assert stamps == sorted(stamps), f"{key} not monotone"

    def test_since_filter_and_bad_since(self):
        doc = get_json(
            f"{self.bases[0]}/v1/timeseries?since={time.time() + 3600:.0f}")
        assert all(not entry["points"]
                   for entry in doc["series"].values())
        status, _, _ = post_job(self.bases[0], echo_spec("x"))  # sanity
        assert status in (200, 202, 429)
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(f"{self.bases[0]}/v1/timeseries?since=yesterday")
        assert err.value.code == 400

    def test_router_aggregates_per_instance_and_fleet(self):
        deadline = time.time() + 10.0
        doc = {}
        while time.time() < deadline:
            doc = get_json(f"{self.router_base}/v1/timeseries")
            if doc["fleet"]["instances"] == 2 and doc["fleet"]["series"]:
                break
            time.sleep(0.2)
        assert doc["fleet"]["instances"] == 2
        assert set(doc["instances"]) == set(self.bases)
        for base in self.bases:
            assert doc["instances"][base]["series"], f"{base} empty"
        # The fleet view sums process metrics across both instances.
        fleet_keys = doc["fleet"]["series"]
        assert any(k.startswith("pasm_process_uptime_seconds")
                   for k in fleet_keys)
        # The router contributes its own series under a separate key.
        assert doc["router"]["series"]
        assert any(k.startswith("pasm_router_")
                   for k in doc["router"]["series"])

    # -- the incident ------------------------------------------------
    def test_saturation_fires_slo_with_bundle_and_correlation_id(self):
        base = self.bases[1]
        rec_dir = self.recorder_dirs[1]
        salt = uuid.uuid4().hex[:8]
        shed_id = f"req-e2e-shed-{salt}"
        # Occupy the single worker, then flood distinct submissions:
        # queue_limit=2 makes everything past the first few shed 429.
        post_job(base, sleep_spec(f"hog-{salt}", 8.0))
        sheds = 0
        alerts = {}
        deadline = time.time() + 20.0
        i = 0
        while time.time() < deadline:
            status, headers, _ = post_job(
                base, echo_spec(f"flood-{salt}-{i}"),
                request_id=f"{shed_id}-{i}" if sheds == 0 else None)
            i += 1
            if status == 429:
                if sheds == 0:
                    shed_id = headers.get("X-Request-ID",
                                          f"{shed_id}-{i - 1}")
                sheds += 1
            alerts = get_json(f"{base}/v1/alerts")
            if alerts["firing"]:
                break
            time.sleep(0.05)
        assert sheds > 0, "flood never produced a 429"
        assert alerts["firing"] >= 1
        firing = [a for a in alerts["alerts"] if a["state"] == "firing"]
        assert any(a["slo"] in ("error-ratio", "queue-depth")
                   for a in firing)

        # The page dumped a flight-recorder bundle...
        deadline = time.time() + 10.0
        bundles = []
        while time.time() < deadline and not bundles:
            bundles = glob.glob(f"{rec_dir}/flightrec-*.json")
            time.sleep(0.1)
        assert bundles, "SLO page produced no incident bundle"
        merged = []
        for path in bundles:
            doc = json.loads(open(path).read())
            assert doc["bundle"] == "pasm-flight-recorder"
            assert doc["reason"].startswith("slo-")
            assert doc["instance"] == "beta"
            merged.extend(doc["events"])
        # ...whose events carry the shed request's correlation ID.
        shed_events = [e for e in merged if e.get("kind") == "shed"]
        assert shed_events, "no shed events in the bundle"
        assert any(e.get("request_id") == shed_id for e in merged), (
            f"correlation id {shed_id} not in bundle events")

        # The router's fleet alert view sees the same page.
        fleet_alerts = get_json(f"{self.router_base}/v1/alerts")
        assert fleet_alerts["firing_count"] >= 1
        assert any(a["instance"] == base for a in fleet_alerts["firing"])

    # -- pasm-top ----------------------------------------------------
    def test_pasm_top_once_renders_the_fleet(self, capsys):
        assert top_main(["--once", self.router_base]) == 0
        out = capsys.readouterr().out
        assert "pasm-top" in out
        assert "req/s" in out and "p95 lat" in out and "queue" in out
        assert "instances:" in out
        for base in self.bases:
            assert base in out

    def test_pasm_top_once_against_one_instance(self, capsys):
        assert top_main(["--once", self.bases[0]]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "req/s" in out

    # -- satellites --------------------------------------------------
    def test_healthz_reports_alert_count(self):
        doc = get_json(f"{self.bases[0]}/healthz")
        assert "alerts_firing" in doc

    def test_sigquit_dump_path_forces_a_bundle(self):
        app = self.servers[0].app
        path = app.dump_incident("sigquit", force=True)
        assert path is not None
        doc = json.loads(open(path).read())
        assert doc["reason"] == "sigquit"
        assert doc["context"]["instance"] == "alpha"
        assert "alerts" in doc["context"]

    def test_heartbeat_emits_one_structured_line(self, capfd):
        self.servers[0].app.heartbeat()
        err = capfd.readouterr().err
        assert "heartbeat" in err
        assert "queue_depth=" in err and "cache_hit_ratio=" in err


# ---------------------------------------------------------------------------
# Handler bugs must land inside the counted path: an exception escaping
# a route handler becomes a 500 that shows up in requests_total (and
# therefore the error-ratio SLO), not an uninstrumented socket write.
class TestHandlerErrorsAreCounted:
    def test_unhandled_exception_is_a_counted_500(self):
        config = ServeConfig(port=0, jobs=1, sample_interval_s=0.0,
                             heartbeat_interval_s=0.0)
        with ServerThread(config) as server:
            base = f"http://127.0.0.1:{server.port}"

            async def boom(request, trace_id, request_id):
                raise RuntimeError("handler bug")

            server.app._route = boom
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(f"{base}/healthz")
            assert err.value.code == 500
            body = json.loads(err.value.read())
            assert "RuntimeError" in body["error"]
            assert body["request_id"]
            rendered = server.app.metrics.render()
            assert 'pasm_serve_requests_total{method="GET"' in rendered
            assert 'status="500"} 1' in rendered
            events = [e for e in server.app.recorder.snapshot()
                      if e.get("kind") == "request"]
            assert events and events[-1]["status"] == 500

    def test_malformed_params_shape_is_a_400(self):
        config = ServeConfig(port=0, jobs=1, sample_interval_s=0.0,
                             heartbeat_interval_s=0.0)
        with ServerThread(config) as server:
            base = f"http://127.0.0.1:{server.port}"
            spec = echo_spec("pairs").to_dict()
            spec["params"] = [["action", "echo"], ["value", "pairs"]]
            status, _, body = post_job_raw(base, spec)
            assert status in (200, 202)
            spec["params"] = [["action", "echo", "extra"]]
            status, _, body = post_job_raw(base, spec)
            assert status == 400
            assert "malformed job spec" in body["error"]


def post_job_raw(base, spec_dict, timeout=10.0):
    request = urllib.request.Request(
        f"{base}/v1/jobs?wait=1&timeout=30",
        data=json.dumps({"spec": spec_dict}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, dict(exc.headers), json.loads(body or b"{}")


# ---------------------------------------------------------------------------
# Sampling disabled: endpoints 404, no sampler task, no per-request cost
class TestSamplingDisabled:
    def test_endpoints_answer_404_and_top_explains(self, capsys):
        config = ServeConfig(port=0, jobs=1, sample_interval_s=0.0,
                             heartbeat_interval_s=0.0)
        with ServerThread(config) as server:
            base = f"http://127.0.0.1:{server.port}"
            for path in ("/v1/timeseries", "/v1/alerts"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    get_json(f"{base}{path}")
                assert err.value.code == 404
            assert server.app.timeseries is None
            assert server.app.slo is None
            assert server.app._sampler is None
            assert top_main(["--once", base]) == 0
            assert "sampling is disabled" in capsys.readouterr().out
