"""Tests for the observability layer (:mod:`repro.obs`).

Covered contracts:

* **IDs** — W3C ``traceparent`` round-trip; malformed headers are
  rejected to ``None`` (never an exception: a bad client header must
  not take down a request);
* **tracer/export** — the Chrome trace-event documents we emit pass
  our own schema check, B/E pairs nest, lanes re-join losslessly;
* **structured logs** — JSON lines parse and carry every field, text
  lines quote awkward values;
* **simulated-time lanes** — a traced SIMD run exposes fetch-queue
  wait spans that the equivalent MIMD run provably lacks (the paper's
  whole point, visible on a timeline);
* **opt-in invariance** — attaching a trace context changes neither
  the job's content hash nor its payload.
"""

import io
import json
import threading

import pytest

from repro.exec import matmul_spec, timed_execute, traced_execute
from repro.exec.engine import ExecStats, ExecutionEngine
from repro.obs import (
    StructuredLogger,
    TraceContext,
    Tracer,
    export_chrome,
    format_traceparent,
    lanes_from_chrome,
    new_request_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_event,
    validate_chrome_trace,
)
from repro.obs.simtrace import tracing_job


# ---------------------------------------------------------------------------
# IDs / traceparent
# ---------------------------------------------------------------------------
class TestIds:
    def test_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        assert new_request_id().startswith("req-")
        int(new_trace_id(), 16)  # hex

    def test_uniqueness(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    def test_roundtrip(self):
        trace, span = new_trace_id(), new_span_id()
        header = format_traceparent(trace, span)
        assert parse_traceparent(header) == (trace, span)

    @pytest.mark.parametrize("header", [
        "",
        "not-a-traceparent",
        "00-zzzz-0011223344556677-01",                        # non-hex
        "00-" + "0" * 32 + "-0011223344556677-01",            # zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",            # zero span
        "ff-" + "a" * 32 + "-0011223344556677-01",            # version ff
        "00-" + "a" * 31 + "-0011223344556677-01",            # short trace
    ])
    def test_malformed_rejected(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_accepted(self):
        # Per W3C: unknown (non-ff) versions parse the known prefix.
        trace, span = "a" * 32, "b" * 16
        assert parse_traceparent(f"01-{trace}-{span}-01-extra") == (
            trace, span)


# ---------------------------------------------------------------------------
# Tracer and Chrome export
# ---------------------------------------------------------------------------
class TestTracerExport:
    def test_export_passes_own_schema(self):
        tracer = Tracer()
        tracer.add_span("work", ts=10.0, dur=5.0, proc="p", thread="t")
        tracer.add_instant("mark", ts=12.0, proc="p", thread="t")
        with tracer.span("outer", proc="p", thread="u"):
            pass
        doc = tracer.to_chrome()
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["trace_id"] == tracer.trace_id
        assert doc["displayTimeUnit"] == "ms"

    def test_be_pairs_and_metadata(self):
        doc = export_chrome(
            [span_event("a", ts=0.0, dur=2.0, proc="p", thread="t")],
            trace_id=new_trace_id(),
        )
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("B") == 1 and phases.count("E") == 1
        assert phases.count("M") >= 2  # process_name + thread_name
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert {"p", "t"} <= names

    def test_zero_duration_becomes_instant(self):
        doc = export_chrome(
            [span_event("z", ts=1.0, dur=0.0, proc="p", thread="t")],
            trace_id=new_trace_id(),
        )
        kinds = {e["ph"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert kinds == {"i"}
        assert validate_chrome_trace(doc) == []

    def test_lanes_roundtrip(self):
        events = [
            span_event("one", ts=0.0, dur=4.0, proc="p", thread="t"),
            span_event("two", ts=5.0, dur=1.0, proc="p", thread="t"),
            span_event("other", ts=0.5, dur=1.0, proc="q", thread="u"),
        ]
        doc = export_chrome(events, trace_id=new_trace_id())
        lanes = lanes_from_chrome(doc)
        lane = lanes[("p", "t")]
        assert [e["name"] for e in lane] == ["one", "two"]
        assert lane[0]["dur"] == pytest.approx(4.0)
        assert [e["name"] for e in lanes[("q", "u")]] == ["other"]

    def test_lanes_rejects_unmatched_end(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ValueError):
            lanes_from_chrome(doc)

    def test_max_events_cap_reports_drops(self):
        tracer = Tracer(max_events=4)
        for i in range(10):
            tracer.add_instant(f"e{i}", ts=float(i), proc="p", thread="t")
        doc = tracer.to_chrome()
        assert doc["otherData"]["dropped_events"] == 6
        assert validate_chrome_trace(doc) == []

    def test_thread_safety(self):
        tracer = Tracer()

        def hammer(k):
            for i in range(200):
                tracer.add_instant(f"t{k}-{i}", ts=float(i),
                                   proc="p", thread=f"t{k}")

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events) == 800
        assert validate_chrome_trace(tracer.to_chrome()) == []


class TestSchema:
    def _doc(self, events):
        return {"traceEvents": events}

    def test_missing_required_field(self):
        probs = validate_chrome_trace(self._doc(
            [{"ph": "i", "ts": 0.0, "tid": 1, "pid": 1}]))
        assert any("name" in p for p in probs)

    def test_decreasing_ts(self):
        probs = validate_chrome_trace(self._doc([
            {"name": "a", "ph": "i", "s": "t", "ts": 5.0, "pid": 1,
             "tid": 1},
            {"name": "b", "ph": "i", "s": "t", "ts": 1.0, "pid": 1,
             "tid": 1},
        ]))
        assert any("backwards" in p for p in probs)

    def test_unbalanced_begin(self):
        probs = validate_chrome_trace(self._doc([
            {"name": "a", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1},
        ]))
        assert probs

    def test_not_a_trace(self):
        assert validate_chrome_trace([1, 2, 3])
        assert validate_chrome_trace({"traceEvents": []})


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------
class TestStructuredLogger:
    def test_json_lines_parse(self):
        buf = io.StringIO()
        log = StructuredLogger(stream=buf, fmt="json", clock=lambda: 0.0)
        log.info("request", method="GET", status=200,
                 request_id="req-abc")
        doc = json.loads(buf.getvalue())
        assert doc == {"ts": "1970-01-01T00:00:00.000Z", "level": "info",
                       "event": "request", "method": "GET", "status": 200,
                       "request_id": "req-abc"}

    def test_text_quotes_awkward_values(self):
        buf = io.StringIO()
        log = StructuredLogger(stream=buf, fmt="text", clock=lambda: 0.0)
        log.warning("note", message='has "quotes" and spaces', n=3)
        line = buf.getvalue()
        assert "WARNING" in line and "note" in line
        assert 'message="has \\"quotes\\" and spaces"' in line
        assert "n=3" in line

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger(fmt="yaml")

    def test_non_serializable_values_stringified(self):
        buf = io.StringIO()
        log = StructuredLogger(stream=buf, fmt="json")
        log.error("oops", exc=ValueError("boom"))
        assert "boom" in json.loads(buf.getvalue())["exc"]


# ---------------------------------------------------------------------------
# Simulated-time lanes through traced_execute
# ---------------------------------------------------------------------------
def _traced_events(mode, n=4, p=4):
    import dataclasses

    spec = matmul_spec(mode, n, p, engine="micro")
    traced = dataclasses.replace(spec, trace=TraceContext(
        trace_id=new_trace_id()))
    outcome = traced_execute(traced)
    assert len(outcome) == 3
    return outcome


class TestSimLanes:
    def test_untraced_is_a_two_tuple(self):
        spec = matmul_spec("simd", 4, 4, engine="micro")
        outcome = traced_execute(spec)
        assert len(outcome) == 2

    def test_trace_context_does_not_change_identity(self):
        import dataclasses

        spec = matmul_spec("simd", 4, 4, engine="micro")
        traced = dataclasses.replace(spec, trace=TraceContext(
            trace_id=new_trace_id()))
        assert traced.content_hash == spec.content_hash
        assert traced == spec
        assert "trace" not in traced.to_dict()

    def test_payload_identical_traced_or_not(self):
        payload, _ = timed_execute(matmul_spec("simd", 4, 4,
                                               engine="micro"))
        traced_payload, _, events = _traced_events("simd")
        assert traced_payload == payload
        assert events

    def test_simd_waits_absent_from_mimd(self):
        """The exported SIMD timeline shows fetch-queue waits; MIMD not.

        This is the acceptance check of the tracing feature: the
        max-over-PEs instruction time the paper measures in SIMD mode
        appears as explicit ``queue_wait`` spans, and the decoupled
        MIMD run of the same problem has none.
        """
        _, _, simd_events = _traced_events("simd")
        _, _, mimd_events = _traced_events("mimd")
        simd_waits = [e for e in simd_events
                      if e.get("cat") == "wait"
                      and e["name"] == "queue_wait"]
        mimd_waits = [e for e in mimd_events if e.get("cat") == "wait"]
        assert simd_waits, "SIMD run must surface fetch-queue waits"
        assert not mimd_waits, "decoupled MIMD run must not wait"
        # Wait lanes are per-PE.
        threads = {e["thread"] for e in simd_waits}
        assert all(t.endswith("waits") for t in threads)

    def test_exported_doc_validates(self):
        _, _, events = _traced_events("simd")
        doc = export_chrome(events, trace_id=new_trace_id())
        assert validate_chrome_trace(doc) == []
        lanes = lanes_from_chrome(doc)
        pe_lanes = [k for k in lanes if k[1].startswith("PE")]
        assert len(pe_lanes) >= 4

    def test_manual_cycles_carried_in_span_args(self):
        _, _, events = _traced_events("simd")
        instr = [e for e in events if e.get("cat") == "instr"]
        assert instr
        for e in instr:
            assert e["args"]["instructions"] >= 1
            assert e["args"]["manual_cycles"] >= 0

    def test_tracing_job_none_is_transparent(self):
        with tracing_job(None) as state:
            assert state is None


# ---------------------------------------------------------------------------
# Engine integration: tracer lanes and the dedup stats column
# ---------------------------------------------------------------------------
class TestEngineTracing:
    def test_engine_records_job_and_cache_lanes(self, tmp_path):
        from repro.exec import ResultCache

        tracer = Tracer()
        spec = matmul_spec("serial", 4, 1, engine="micro")
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(str(tmp_path)),
                                 tracer=tracer)
        engine.run([spec])
        engine.run([spec])  # warm: cache-hit instant
        doc = tracer.to_chrome()
        assert validate_chrome_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(n.startswith("cache hit") for n in names)
        assert spec.label() in names
        # The computed job carried its sim lanes back into the tracer.
        lanes = lanes_from_chrome(doc)
        assert any(k[1].startswith("PE") for k in lanes)

    def test_stats_table_has_dedup_column(self):
        stats = ExecStats()
        spec = matmul_spec("serial", 4, 1, engine="micro")
        stats.record_dedup(spec)
        stats.record_dedup(spec)
        table = stats.summary_table()
        header, rows = table.splitlines()[1], table.splitlines()[3:]
        assert "dedup" in header
        # dedup renders immediately before resubmits.
        cols = [c.strip() for c in header.split("|")]
        assert cols.index("dedup") == cols.index("resubmits") - 1
        assert stats.dedup == 2
