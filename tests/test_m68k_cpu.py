"""Interpreter tests: instruction semantics, flags, control flow, and
end-to-end cycle accounting on the SimpleBus."""

import pytest

from repro.m68k.assembler import assemble
from repro.m68k.bus import SimpleBus
from repro.m68k.cpu import CPU, HaltReason
from repro.sim import Environment


def run_source(source, *, ws_stream=0, ws_data=0, setup=None, **asm_kwargs):
    """Assemble and run until HALT; return (cpu, bus, env)."""
    env = Environment()
    bus = SimpleBus(env, ws_stream=ws_stream, ws_data=ws_data)
    prog = assemble(source, **asm_kwargs)
    bus.load_program(prog)
    cpu = CPU(env, bus, name="test")
    cpu.reset(pc=prog.entry, sp=0x1_F000)
    if setup:
        setup(cpu, bus)
    env.run(until=env.process(cpu.run()))
    assert cpu.halted is HaltReason.HALT_INSTRUCTION
    return cpu, bus, env


class TestDataMovement:
    def test_moveq_sign_extends(self):
        cpu, _, _ = run_source("    MOVEQ #-1,D0\n    HALT")
        assert cpu.regs.d[0] == 0xFFFF_FFFF
        assert cpu.regs.ccr.n

    def test_move_word_to_register_preserves_upper(self):
        def setup(cpu, bus):
            cpu.regs.d[1] = 0xAAAA_0000

        cpu, _, _ = run_source("    MOVE.W #$1234,D1\n    HALT", setup=setup)
        assert cpu.regs.d[1] == 0xAAAA_1234

    def test_move_memory_roundtrip(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #$BEEF,$4000
            MOVE.W  $4000,D2
            HALT
            """
        )
        assert bus.peek(0x4000, 2) == 0xBEEF
        assert cpu.regs.d[2] & 0xFFFF == 0xBEEF

    def test_movea_sign_extends_word(self):
        cpu, _, _ = run_source("    MOVEA.W #$8000,A0\n    HALT")
        assert cpu.regs.a[0] == 0xFFFF_8000

    def test_postincrement_steps_by_size(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000
            bus.poke(0x4000, 0x1111, 2)
            bus.poke(0x4002, 0x2222, 2)

        cpu, _, _ = run_source(
            """
            MOVE.W (A0)+,D0
            MOVE.W (A0)+,D1
            HALT
            """,
            setup=setup,
        )
        assert cpu.regs.d[0] & 0xFFFF == 0x1111
        assert cpu.regs.d[1] & 0xFFFF == 0x2222
        assert cpu.regs.a[0] == 0x4004

    def test_predecrement(self):
        def setup(cpu, bus):
            cpu.regs.a[1] = 0x4004

        cpu, bus, _ = run_source(
            "    MOVE.W #7,-(A1)\n    HALT", setup=setup
        )
        assert cpu.regs.a[1] == 0x4002
        assert bus.peek(0x4002, 2) == 7

    def test_displacement_addressing(self):
        def setup(cpu, bus):
            cpu.regs.a[2] = 0x4000
            bus.poke(0x4008, 0x5A5A, 2)

        cpu, _, _ = run_source("    MOVE.W 8(A2),D3\n    HALT", setup=setup)
        assert cpu.regs.d[3] & 0xFFFF == 0x5A5A

    def test_index_addressing(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000
            cpu.regs.d[1] = 6
            bus.poke(0x4000 + 6 + 2, 0x77, 2)

        cpu, _, _ = run_source("    MOVE.W 2(A0,D1.W),D0\n    HALT", setup=setup)
        assert cpu.regs.d[0] & 0xFFFF == 0x77

    def test_lea(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000

        cpu, _, _ = run_source("    LEA 16(A0),A1\n    HALT", setup=setup)
        assert cpu.regs.a[1] == 0x4010

    def test_swap_and_exg(self):
        def setup(cpu, bus):
            cpu.regs.d[0] = 0x1234_5678
            cpu.regs.a[3] = 0x9ABC_DEF0

        cpu, _, _ = run_source(
            "    SWAP D0\n    EXG D0,A3\n    HALT", setup=setup
        )
        assert cpu.regs.a[3] == 0x5678_1234
        assert cpu.regs.d[0] == 0x9ABC_DEF0

    def test_move_long(self):
        cpu, bus, _ = run_source(
            """
            MOVE.L #$12345678,D0
            MOVE.L D0,$4000
            HALT
            """
        )
        assert bus.peek(0x4000, 4) == 0x1234_5678


class TestArithmetic:
    def test_add_and_flags(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$7FFF,D0\n    ADD.W #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0x8000
        assert cpu.regs.ccr.v and cpu.regs.ccr.n and not cpu.regs.ccr.c

    def test_add_carry(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$FFFF,D0\n    ADD.W #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0
        assert cpu.regs.ccr.c and cpu.regs.ccr.z and cpu.regs.ccr.x

    def test_sub_borrow(self):
        cpu, _, _ = run_source(
            "    MOVE.W #3,D0\n    SUB.W #5,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0xFFFE
        assert cpu.regs.ccr.c and cpu.regs.ccr.n

    def test_cmp_does_not_store(self):
        cpu, _, _ = run_source(
            "    MOVE.W #9,D0\n    CMP.W #9,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 9
        assert cpu.regs.ccr.z

    def test_memory_destination_add(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #10,$4000
            MOVE.W  #32,D0
            ADD.W   D0,$4000
            HALT
            """
        )
        assert bus.peek(0x4000, 2) == 42

    def test_addq_subq(self):
        cpu, _, _ = run_source(
            "    MOVEQ #10,D0\n    ADDQ.W #5,D0\n    SUBQ.W #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 14

    def test_adda_no_flags(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000
            cpu.regs.ccr.z = True

        cpu, _, _ = run_source("    ADDA.W #$10,A0\n    HALT", setup=setup)
        assert cpu.regs.a[0] == 0x4010
        assert cpu.regs.ccr.z  # unchanged

    def test_mulu_result(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #300,D0
            MOVE.W  #500,D1
            MULU    D0,D1
            HALT
            """
        )
        assert cpu.regs.d[1] == 150_000

    def test_mulu_unsigned_interpretation(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #$FFFF,D0
            MOVE.W  #2,D1
            MULU    D0,D1
            HALT
            """
        )
        assert cpu.regs.d[1] == 0xFFFF * 2

    def test_muls_signed(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #-3,D0
            MOVE.W  #7,D1
            MULS    D0,D1
            HALT
            """
        )
        assert cpu.regs.d[1] == (-21) & 0xFFFF_FFFF

    def test_logic_ops(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #$F0F0,D0
            AND.W   #$FF00,D0
            OR.W    #$000F,D0
            EOR.W   #$0001,D0
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 0xF00E

    def test_shifts(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #1,D0
            LSL.W   #4,D0
            MOVE.W  #$8000,D1
            LSR.W   #1,D1
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 16
        assert cpu.regs.d[1] & 0xFFFF == 0x4000

    def test_clr_not_neg(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #5,D0
            NEG.W   D0
            MOVE.W  #$00FF,D1
            NOT.W   D1
            MOVE.W  #3,D2
            CLR.W   D2
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 0xFFFB
        assert cpu.regs.d[1] & 0xFFFF == 0xFF00
        assert cpu.regs.d[2] & 0xFFFF == 0
        assert cpu.regs.ccr.z

    def test_ext(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$FFFF,D0\n    EXT.L D0\n    HALT"
        )
        assert cpu.regs.d[0] == 0xFFFF_FFFF

    def test_divu(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #100007,D0
            MOVE.W  #10,D1
            DIVU    D1,D0
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 10000  # quotient
        assert (cpu.regs.d[0] >> 16) & 0xFFFF == 7  # remainder


class TestControlFlow:
    def test_dbra_loop_count(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            MOVE.W  #9,D1
    loop:   ADDQ.W  #1,D0
            DBRA    D1,loop
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 10  # DBRA executes count+1 times

    def test_conditional_branch(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #5,D0
            CMP.W   #5,D0
            BEQ     equal
            MOVEQ   #0,D1
            BRA     done
    equal:  MOVEQ   #1,D1
    done:   HALT
            """
        )
        assert cpu.regs.d[1] == 1

    def test_bne_loop(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            MOVE.W  #5,D1
    loop:   ADDQ.W  #1,D0
            SUBQ.W  #1,D1
            BNE     loop
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 5

    def test_jsr_rts(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            JSR     sub
            ADDQ.W  #1,D0
            HALT
    sub:    MOVE.W  #10,D0
            RTS
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 11

    def test_bsr_rts_nested(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            BSR     one
            HALT
    one:    BSR     two
            ADDQ.W  #1,D0
            RTS
    two:    ADDQ.W  #2,D0
            RTS
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 3

    def test_jmp_indirect(self):
        cpu, _, _ = run_source(
            """
            LEA     there,A0
            JMP     (A0)
            MOVEQ   #0,D0
            HALT
    there:  MOVEQ   #9,D0
            HALT
            """
        )
        assert cpu.regs.d[0] == 9

    def test_dbcc_exits_on_condition(self):
        # DBEQ: exit the loop early when Z becomes set.
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            MOVE.W  #100,D1
    loop:   ADDQ.W  #1,D0
            CMP.W   #4,D0
            DBEQ    D1,loop
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 4


class TestCycleAccounting:
    def test_straight_line_cycle_total(self):
        # MOVEQ(4) + MOVE.W #,Dn(8) + ADD Dn,Dn(4) + MULU(38+2*ones(3)=42)
        # + HALT(4) = 62 at zero wait states.
        cpu, bus, env = run_source(
            """
            MOVEQ   #3,D0
            MOVE.W  #3,D1
            ADD.W   D1,D1
            MULU    D0,D1
            HALT
            """
        )
        assert env.now == 4 + 8 + 4 + 42 + 4

    def test_wait_states_stretch_stream_accesses(self):
        src = "    NOP\n    NOP\n    HALT"
        _, _, env0 = run_source(src)
        _, _, env1 = run_source(src, ws_stream=1)
        # three single-word instructions → 3 extra cycles
        assert env1.now - env0.now == 3

    def test_wait_states_stretch_data_accesses(self):
        src = """
            MOVE.W  #1,$4000
            MOVE.W  $4000,D0
            HALT
            """
        _, _, env0 = run_source(src)
        _, _, env1 = run_source(src, ws_data=2)
        # one data write + one data read → 2 accesses * 2 ws = 4 cycles
        assert env1.now - env0.now == 4

    def test_dbra_loop_timing(self):
        # Loop body: ADDQ.W #1,D0 (4) + DBRA taken (10); final: DBRA
        # expired (14).  3 iterations: 2*(4+10) + (4+14).
        cpu, bus, env = run_source(
            """
            MOVE.W  #2,D1
    loop:   ADDQ.W  #1,D0
            DBRA    D1,loop
            HALT
            """
        )
        assert env.now == 8 + 2 * 14 + 18 + 4

    def test_category_cycles_accumulate(self):
        cpu, _, env = run_source(
            """
            .timecat mult
            MOVE.W  #15,D0
            MULU    D0,D1
            .timecat control
            HALT
            """
        )
        assert cpu.category_cycles["mult"] == 8 + (38 + 8)
        assert cpu.category_cycles["control"] == 4
        assert sum(cpu.category_cycles.values()) == env.now

    def test_instruction_count(self):
        cpu, _, _ = run_source("    NOP\n    NOP\n    NOP\n    HALT")
        assert cpu.instruction_count == 4

    def test_mulu_data_dependent_time(self):
        def run_with_multiplier(value):
            cpu, _, env = run_source(
                f"""
                MOVE.W  #{value},D0
                MULU    D0,D1
                HALT
                """
            )
            return env.now

        base = run_with_multiplier(0)
        assert run_with_multiplier(1) == base + 2
        assert run_with_multiplier(0xFFFF) == base + 32
        assert run_with_multiplier(0x00FF) == base + 16
