"""Tests for the shared utilities: bit operations, RNG policy, rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    ascii_plot,
    byte_swap16,
    derive_seed,
    format_table,
    make_rng,
    ones_count,
    sign_extend,
    to_signed,
    to_unsigned,
    transitions_count,
)
from repro.utils.bitops import bit_length_mask


class TestBitOps:
    def test_ones_count_scalar(self):
        assert ones_count(0) == 0
        assert ones_count(0xFFFF) == 16
        assert ones_count(0b1010_1010) == 4
        assert ones_count(0x1_0000) == 0  # masked to 16 bits

    def test_ones_count_width(self):
        assert ones_count(0xFF, width=4) == 4

    def test_ones_count_array_matches_scalar(self):
        values = np.arange(2048, dtype=np.uint64)
        vec = ones_count(values, 16)
        assert vec.tolist() == [ones_count(int(v)) for v in values]

    def test_transitions_scalar(self):
        # 0xFFFF << 1 = 0x1FFFE: one 01 boundary at the bottom.
        assert transitions_count(0xFFFF) == 1
        assert transitions_count(0) == 0
        assert transitions_count(0b0101010101010101) == 16

    def test_transitions_array_matches_scalar(self):
        values = np.arange(2048, dtype=np.uint64)
        vec = transitions_count(values, 16)
        assert vec.tolist() == [transitions_count(int(v)) for v in values]

    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=100)
    def test_transitions_bounded(self, v):
        assert 0 <= transitions_count(v) <= 16

    def test_sign_extend(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x7F, 8) == 127
        assert sign_extend(0x8000, 16) == -32768

    def test_to_signed_to_unsigned_roundtrip(self):
        for v in (-1, -32768, 0, 1, 32767):
            assert to_signed(to_unsigned(v, 2), 2) == v

    def test_byte_swap(self):
        assert byte_swap16(0x1234) == 0x3412
        assert byte_swap16(byte_swap16(0xBEEF)) == 0xBEEF

    def test_bit_length_mask(self):
        assert bit_length_mask(0) == 0
        assert bit_length_mask(16) == 0xFFFF
        with pytest.raises(ValueError):
            bit_length_mask(-1)


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(42, "x", 1) == derive_seed(42, "x", 1)

    def test_derive_seed_sensitive_to_components(self):
        seeds = {
            derive_seed(42, "x", 1),
            derive_seed(42, "x", 2),
            derive_seed(42, "y", 1),
            derive_seed(43, "x", 1),
        }
        assert len(seeds) == 4

    def test_make_rng_reproducible(self):
        a = make_rng(7, "test").integers(0, 1000, 10)
        b = make_rng(7, "test").integers(0, 1000, 10)
        assert np.array_equal(a, b)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [("a", 1), ("bbbb", 22)])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_format_table_floats(self):
        text = format_table(["x"], [(1.23456789,)])
        assert "1.235" in text

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [(1,)])

    def test_ascii_plot_markers_and_legend(self):
        text = ascii_plot(
            {"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]},
            width=20, height=5,
        )
        assert "* = up" in text and "o = down" in text

    def test_ascii_plot_log_scales(self):
        text = ascii_plot(
            {"s": [(1, 10), (100, 1000)]}, logx=True, logy=True,
            width=10, height=4,
        )
        assert "x: 1 .. 100" in text

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot({})

    def test_ascii_plot_constant_series(self):
        # Degenerate span must not divide by zero.
        text = ascii_plot({"c": [(5, 7), (5, 7)]}, width=8, height=3)
        assert "c" in text
