"""Tests for the Fetch Unit: mask, queue release rule, block controller."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.fetch_unit import (
    FetchUnitController,
    FetchUnitQueue,
    MaskRegister,
    QueueItem,
    sync_item,
)
from repro.m68k.assembler import assemble
from repro.sim import Environment


def instr_item(mask, words=1):
    """A queue item wrapping a real (NOP) instruction of ``words`` words."""
    from repro.m68k.instructions import Instruction

    return QueueItem(payload=Instruction("NOP"), words=words, mask=frozenset(mask))


class TestMaskRegister:
    def test_starts_all_enabled(self):
        m = MaskRegister((0, 1, 2, 3))
        assert m.enabled == frozenset({0, 1, 2, 3})

    def test_set_enabled_subset(self):
        m = MaskRegister((0, 1, 2, 3))
        m.set_enabled({1, 3})
        assert m.enabled == frozenset({1, 3})
        assert 1 in m and 0 not in m

    def test_unknown_slot_rejected(self):
        m = MaskRegister((0, 1))
        with pytest.raises(ConfigurationError):
            m.set_enabled({5})

    def test_set_from_bits(self):
        m = MaskRegister((4, 5, 6, 7))
        m.set_from_bits(0b0101)
        assert m.enabled == frozenset({4, 6})

    def test_enable_all(self):
        m = MaskRegister((0, 1))
        m.set_enabled({0})
        m.enable_all()
        assert m.enabled == frozenset({0, 1})


class TestQueueReleaseRule:
    def test_release_waits_for_all_enabled(self):
        env = Environment()
        q = FetchUnitQueue(env, 16)
        q.try_enqueue(instr_item({0, 1}))
        got = []

        def pe(slot, delay):
            yield env.timeout(delay)
            item = yield from q.request(slot)
            got.append((slot, env.now, item))

        env.process(pe(0, 5))
        env.process(pe(1, 20))
        env.run()
        # Both PEs receive the item at the moment the *last* one requested.
        assert [(s, t) for s, t, _ in sorted(got)] == [(0, 20), (1, 20)]

    def test_pe_not_in_mask_waits_for_its_item(self):
        env = Environment()
        q = FetchUnitQueue(env, 16)
        q.try_enqueue(instr_item({0}))
        q.try_enqueue(instr_item({0, 1}))
        got = []

        def pe(slot):
            item = yield from q.request(slot)
            got.append((slot, q.releases))

        env.process(pe(1))
        env.process(pe(0))
        env.run(until=1)
        # PE0 got the first item alone; then both must fetch the second.
        assert (0, 1) in got

        def pe0_again():
            yield from q.request(0)

        env.process(pe0_again())
        env.run()
        assert q.releases == 2
        assert (1, 2) in got

    def test_fetch_blocks_on_empty_queue(self):
        env = Environment()
        q = FetchUnitQueue(env, 16)
        got = []

        def pe(slot):
            item = yield from q.request(slot)
            got.append(env.now)

        def producer():
            yield env.timeout(50)
            q.try_enqueue(instr_item({0}))

        env.process(pe(0))
        env.process(producer())
        env.run()
        assert got == [50]
        assert q.empty_stall_cycles == pytest.approx(50)

    def test_capacity_blocks_enqueue(self):
        env = Environment()
        q = FetchUnitQueue(env, 4)
        assert q.try_enqueue(instr_item({0}, words=3))
        assert not q.try_enqueue(instr_item({0}, words=2))
        assert q.try_enqueue(instr_item({0}, words=1))
        assert q.space_left() == 0

    def test_blocking_enqueue_resumes_after_release(self):
        env = Environment()
        q = FetchUnitQueue(env, 2)
        q.try_enqueue(instr_item({0}, words=2))
        done = []

        def producer():
            yield from q.enqueue(instr_item({0}, words=2))
            done.append(env.now)

        def consumer():
            yield env.timeout(30)
            yield from q.request(0)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [30]

    def test_fifo_order_preserved(self):
        env = Environment()
        q = FetchUnitQueue(env, 64)
        from repro.m68k.instructions import Instruction

        labels = []
        for name in ("A", "B", "C"):
            q.try_enqueue(
                QueueItem(Instruction("NOP", label=name), 1, frozenset({0}))
            )

        def pe():
            for _ in range(3):
                item = yield from q.request(0)
                labels.append(item.payload.label)

        env.process(pe())
        env.run()
        assert labels == ["A", "B", "C"]

    def test_double_request_rejected(self):
        env = Environment()
        q = FetchUnitQueue(env, 4)

        def pe():
            yield from q.request(0)

        env.process(pe())
        env.process(pe())
        with pytest.raises(SimulationError, match="pending request"):
            env.run()

    def test_empty_mask_rejected(self):
        env = Environment()
        q = FetchUnitQueue(env, 4)
        with pytest.raises(SimulationError):
            env.process(q.enqueue(QueueItem(None, 1, frozenset()))) and env.run()
            env.run()

    def test_oversized_item_rejected(self):
        env = Environment()
        q = FetchUnitQueue(env, 2)

        def producer():
            yield from q.enqueue(instr_item({0}, words=3))

        env.process(producer())
        with pytest.raises(SimulationError, match="exceeds queue capacity"):
            env.run()

    def test_sync_item_is_one_word(self):
        s = sync_item({0, 1})
        assert s.is_sync and s.words == 1 and s.mask == frozenset({0, 1})

    def test_high_water_statistic(self):
        env = Environment()
        q = FetchUnitQueue(env, 16)
        q.try_enqueue(instr_item({0}, words=3))
        q.try_enqueue(instr_item({0}, words=2))
        assert q.high_water == 5


class TestController:
    def make(self, env, capacity=64, cpw=4):
        q = FetchUnitQueue(env, capacity)
        mask = MaskRegister((0, 1))
        c = FetchUnitController(env, q, mask, cycles_per_word=cpw)
        return q, mask, c

    def block(self, source="    NOP\n    MOVE.W #1,D0\n    HALT"):
        return assemble(source).instruction_list()

    def test_block_transfer(self):
        env = Environment()
        q, mask, c = self.make(env)
        c.register_block("b", self.block())

        def mc():
            yield from c.submit_block("b")
            yield from c.drained()
            return env.now

        p = env.process(mc())
        done = env.run(until=p)
        # NOP(1) + MOVE #,Dn(2) + HALT(1) = 4 words at 4 cycles/word.
        assert q.words_used == 4
        assert done >= 16

    def test_mask_captured_at_enqueue_time(self):
        env = Environment()
        q, mask, c = self.make(env)
        c.register_block("b", self.block("    NOP\n    NOP"))

        def mc():
            mask.set_enabled({0})
            yield from c.submit_block("b")
            yield from c.drained()
            mask.set_enabled({0, 1})  # later change must not affect queue

        env.run(until=env.process(mc()))
        assert all(item.mask == frozenset({0}) for item in q._items)

    def test_control_flow_in_block_rejected(self):
        env = Environment()
        _, _, c = self.make(env)
        with pytest.raises(ConfigurationError, match="straight-line"):
            c.register_block("bad", assemble("x: BRA x\n    HALT").instruction_list())

    def test_unknown_block_rejected(self):
        env = Environment()
        _, _, c = self.make(env)

        def mc():
            yield from c.submit_block("nope")

        env.process(mc())
        with pytest.raises(ConfigurationError):
            env.run()

    def test_sync_words(self):
        env = Environment()
        q, mask, c = self.make(env)

        def mc():
            yield from c.submit_sync_words(3)
            yield from c.drained()

        env.run(until=env.process(mc()))
        assert q.words_used == 3
        assert all(item.is_sync for item in q._items)

    def test_mc_overlaps_with_transfer(self):
        """submit_block returns before the transfer finishes (the paper's
        'the MC CPU can proceed with other operations')."""
        env = Environment()
        q, mask, c = self.make(env, cpw=10)
        c.register_block("big", self.block("    NOP\n" * 20 + "    HALT"))

        def mc():
            yield from c.submit_block("big")
            return env.now

        p = env.process(mc())
        submit_done = env.run(until=p)
        assert submit_done < 20 * 10  # returned long before transfer end

    def test_empty_block_rejected(self):
        env = Environment()
        _, _, c = self.make(env)
        with pytest.raises(ConfigurationError):
            c.register_block("empty", [])
