"""Tests for staged runs and the recursive-doubling reduction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import PASMMachine, PrototypeConfig
from repro.network.permutations import analyze_permutation, exchange
from repro.network.topology import ExtraStageCubeTopology
from repro.programs.reduction import run_reduction
from repro.utils.rng import make_rng

CFG = PrototypeConfig()


def machine(p=4):
    m = PASMMachine(CFG, partition_size=p)
    return m


class TestReduction:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_all_pes_hold_the_sum(self, p):
        rng = make_rng(p, "reduction")
        values = rng.integers(0, 1 << 12, size=p, dtype=np.uint16)
        _, totals = run_reduction(machine(p), values)
        want = int(values.astype(np.uint32).sum()) & 0xFFFF
        assert totals.tolist() == [want] * p

    def test_sum_wraps_16bit(self):
        values = np.array([0xFFFF, 0xFFFF, 2, 1], dtype=np.uint16)
        _, totals = run_reduction(machine(4), values)
        want = (0xFFFF + 0xFFFF + 2 + 1) & 0xFFFF
        assert set(totals.tolist()) == {want}

    def test_setup_cost_is_visible(self):
        """Charging circuit set-up per stage lengthens the run by exactly
        log2(p) * setup_cycles — the cost matmul's design avoided."""
        values = np.arange(4, dtype=np.uint16)
        charged, _ = run_reduction(machine(4), values, charge_setup=True)
        free, _ = run_reduction(machine(4), values, charge_setup=False)
        stages = 2  # log2(4)
        assert charged.cycles - free.cycles == pytest.approx(
            stages * CFG.net_setup_cycles
        )
        assert charged.net_setup_cycles == stages * CFG.net_setup_cycles

    def test_setup_dominates_tiny_messages(self):
        """For one-word exchanges the set-up cost dominates the run — the
        quantitative form of the paper's 'time consuming' remark."""
        values = np.arange(16, dtype=np.uint16)
        result, _ = run_reduction(machine(16), values, charge_setup=True)
        assert result.net_setup_cycles > 0.4 * result.cycles

    def test_exchange_permutations_admissible(self):
        """Every stage's permutation is a cube exchange: one-pass routable."""
        topo = ExtraStageCubeTopology(16)
        for k in range(4):
            report = analyze_permutation(topo, exchange(16, k))
            assert report.admissible

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_reduction(machine(4), np.zeros(3, dtype=np.uint16))

    def test_log_p_scaling(self):
        """Stage count is log2(p): time grows logarithmically, not
        linearly, in p (per-stage work is constant)."""
        t = {}
        for p in (4, 16):
            values = np.ones(p, dtype=np.uint16)
            result, _ = run_reduction(machine(p), values,
                                      charge_setup=False)
            t[p] = result.cycles
        # 16 PEs = 4 stages vs 4 PEs = 2 stages: about 2x, nowhere near 4x.
        assert t[16] / t[4] == pytest.approx(2.0, rel=0.2)
