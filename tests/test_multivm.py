"""Tests for partitioned operation: independent virtual machines sharing
the physical machine."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.machine import (
    ExecutionMode,
    PASMMachine,
    PartitionedMachine,
    PrototypeConfig,
)
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.data import load_pe_matrices, read_pe_result, assemble_result

CFG = PrototypeConfig()


def arm_matmul(pm, vm, mode, n, a, b):
    """Load a matmul workload onto a VM and arm it."""
    bundle = build_matmul(
        mode, n, vm.p, device_symbols=CFG.device_symbols()
    )
    layout = bundle.layout
    for logical in range(vm.p):
        load_pe_matrices(vm.pe(logical).memory, layout, logical, a, b)
    vm.connect_shift_circuit()
    if mode is ExecutionMode.SIMD:
        pm.start(vm, mode, bundle.simd.mc_program, bundle.simd.blocks,
                 bundle.simd.data_programs)
    elif mode is ExecutionMode.SMIMD:
        pm.start(vm, mode, bundle.programs, bundle.sync_words)
    else:
        pm.start(vm, mode, bundle.programs)
    return bundle


def extract(vm, bundle):
    return assemble_result(
        [read_pe_result(vm.pe(i).memory, bundle.layout) for i in range(vm.p)]
    )


class TestPartitionedMachine:
    def test_two_vms_disjoint_mcs(self):
        pm = PartitionedMachine(CFG)
        vm_a = pm.new_vm(4, first_mc=0)
        vm_b = pm.new_vm(4, first_mc=1)
        assert vm_a.partition.mcs == [0]
        assert vm_b.partition.mcs == [1]
        assert not (
            {pe.physical_id for pe in vm_a.pes}
            & {pe.physical_id for pe in vm_b.pes}
        )

    def test_overlapping_vm_rejected(self):
        pm = PartitionedMachine(CFG)
        pm.new_vm(8, first_mc=0)  # MCs 0,1
        with pytest.raises(PartitionError, match="already belong"):
            pm.new_vm(4, first_mc=1)

    def test_concurrent_matmuls_both_correct(self):
        """Two VMs multiply different matrices concurrently; both exact."""
        pm = PartitionedMachine(CFG)
        vm_a = pm.new_vm(4, first_mc=0)
        vm_b = pm.new_vm(4, first_mc=1)
        a1, b1 = generate_matrices(8, seed=1)
        a2, b2 = generate_matrices(8, seed=2)
        bun_a = arm_matmul(pm, vm_a, ExecutionMode.SMIMD, 8, a1, b1)
        bun_b = arm_matmul(pm, vm_b, ExecutionMode.MIMD, 8, a2, b2)
        results = pm.run_all()
        assert np.array_equal(extract(vm_a, bun_a), expected_product(a1, b1))
        assert np.array_equal(extract(vm_b, bun_b), expected_product(a2, b2))
        assert results[0].mode is ExecutionMode.SMIMD
        assert results[1].mode is ExecutionMode.MIMD

    def test_coresidency_does_not_change_timing(self):
        """A VM's timing is identical whether it runs alone or alongside
        another VM — the architectural independence claim."""
        n = 8
        a, b = generate_matrices(n, seed=5)

        # Alone.
        alone = PASMMachine(CFG, partition_size=4, first_mc=0)
        bundle = build_matmul(
            ExecutionMode.SMIMD, n, 4, device_symbols=CFG.device_symbols()
        )
        for logical in range(4):
            load_pe_matrices(
                alone.pe(logical).memory, bundle.layout, logical, a, b
            )
        alone.connect_shift_circuit()
        alone_result = alone.run_smimd(bundle.programs, bundle.sync_words)

        # Co-resident with a busy neighbour VM.
        pm = PartitionedMachine(CFG)
        vm = pm.new_vm(4, first_mc=0)
        other = pm.new_vm(4, first_mc=2)
        bun = arm_matmul(pm, vm, ExecutionMode.SMIMD, n, a, b)
        a2, b2 = generate_matrices(16, seed=9)
        arm_matmul(pm, other, ExecutionMode.MIMD, 16, a2, b2)
        results = pm.run_all()

        assert results[0].cycles == pytest.approx(alone_result.cycles)

    def test_simd_and_mimd_vms_coexist(self):
        pm = PartitionedMachine(CFG)
        vm_a = pm.new_vm(4, first_mc=0)
        vm_b = pm.new_vm(4, first_mc=3)
        a1, b1 = generate_matrices(8, seed=3)
        bun_a = arm_matmul(pm, vm_a, ExecutionMode.SIMD, 8, a1, b1)
        a2, b2 = generate_matrices(8, seed=4)
        bun_b = arm_matmul(pm, vm_b, ExecutionMode.SMIMD, 8, a2, b2)
        pm.run_all()
        assert np.array_equal(extract(vm_a, bun_a), expected_product(a1, b1))
        assert np.array_equal(extract(vm_b, bun_b), expected_product(a2, b2))

    def test_run_all_without_start_rejected(self):
        pm = PartitionedMachine(CFG)
        pm.new_vm(4, first_mc=0)
        with pytest.raises(PartitionError, match="no workloads"):
            pm.run_all()

    def test_foreign_vm_rejected(self):
        pm = PartitionedMachine(CFG)
        stranger = PASMMachine(CFG, partition_size=4)
        with pytest.raises(PartitionError, match="does not belong"):
            pm.start(stranger, ExecutionMode.MIMD, [])

    def test_four_serial_vms(self):
        """Four size-1 VMs: the machine as a throughput processor farm."""
        from repro.m68k.assembler import assemble

        pm = PartitionedMachine(CFG)
        vms = [pm.new_vm(1, first_mc=mc) for mc in range(4)]
        for i, vm in enumerate(vms):
            prog = assemble(
                f"    MOVE.W #{i * 11},D0\n    MOVE.W D0,$4000\n    HALT"
            )
            pm.start(vm, ExecutionMode.SERIAL, prog)
        pm.run_all()
        for i, vm in enumerate(vms):
            assert vm.pe(0).memory.read(0x4000, 2) == i * 11
