"""The flight recorder: bounded ring, incident bundles, rate limiting."""

import json

import pytest

from repro.obs.recorder import DUMP_DIR_ENV, FlightRecorder


class FakeClock:
    def __init__(self, now=5_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


class TestRing:
    def test_ring_is_bounded_and_drops_oldest(self):
        rec = FlightRecorder(capacity=16, clock=FakeClock())
        for i in range(16 + 10):
            rec.record("request", idx=i)
        assert len(rec) == 16
        events = rec.snapshot()
        assert events[0]["idx"] == 10 and events[-1]["idx"] == 25
        # Sequence numbers keep counting across evictions.
        assert events[0]["seq"] == 11
        assert rec.events_recorded == 26

    def test_none_fields_are_dropped(self):
        rec = FlightRecorder(capacity=4, clock=FakeClock())
        rec.record("shed", request_id="req-1", trace_id=None)
        (event,) = rec.snapshot()
        assert event["request_id"] == "req-1"
        assert "trace_id" not in event

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_bundle_carries_events_and_context(self, tmp_path):
        clock = FakeClock()
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path),
                             instance="alpha", clock=clock)
        rec.record("request", request_id="req-shed-42", status=429)
        path = rec.dump("slo-error-ratio", extra={"queue_depth": 64})
        assert path is not None
        doc = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert doc["reason"] == "slo-error-ratio"
        assert doc["instance"] == "alpha"
        assert doc["context"]["queue_depth"] == 64
        (event,) = doc["events"]
        assert event["request_id"] == "req-shed-42"

    def test_dumps_are_rate_limited_unless_forced(self, tmp_path):
        clock = FakeClock()
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path),
                             min_dump_interval_s=10.0, clock=clock)
        assert rec.dump("first") is not None
        clock.advance(1.0)
        assert rec.dump("storm") is None  # inside the window
        assert rec.dump("sigquit", force=True) is not None
        clock.advance(20.0)
        assert rec.dump("later") is not None
        assert rec.dumps_written == 3

    def test_reason_is_sanitized_into_the_filename(self, tmp_path):
        rec = FlightRecorder(capacity=4, dump_dir=str(tmp_path),
                             clock=FakeClock())
        path = rec.dump("slo error/ratio!")
        assert path is not None
        assert path.endswith("-slo-error-ratio-.json")

    def test_dump_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path / "env-dir"))
        rec = FlightRecorder(capacity=4, clock=FakeClock())
        assert rec.dump("env") is not None
        assert (tmp_path / "env-dir").is_dir()
