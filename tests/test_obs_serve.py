"""End-to-end correlation tests: client → service → worker → trace.

The tracing tentpole's acceptance path: one traced client request must
surface the *same* trace ID in (a) the HTTP response headers, (b) the
service's access-log line, and (c) the exported per-PE Chrome trace —
across the asyncio broker and the spawn-context pool worker.
"""

import http.client
import io
import json

import pytest

from repro.exec import matmul_spec
from repro.obs import parse_traceparent, validate_chrome_trace
from repro.serve import ServeClient, ServeConfig, ServerThread


@pytest.fixture(scope="module")
def traced_server():
    config = ServeConfig(port=0, jobs=2, no_cache=True, trace=True,
                         log_format="json", queue_limit=16)
    with ServerThread(config) as server:
        log_buf = io.StringIO()
        server.app.log._stream = log_buf
        yield server, log_buf


def _log_lines(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()
            if line.strip()]


class TestEndToEndCorrelation:
    def test_trace_id_spans_client_log_and_worker(self, traced_server):
        server, log_buf = traced_server
        client = ServeClient(port=server.port, trace=True)
        spec = matmul_spec("simd", 4, 4, engine="micro")

        reply = client.request(
            "POST", "/v1/jobs?wait=1&timeout=30",
            doc={"spec": spec.to_dict(), "lane": "interactive"})
        assert reply.status == 200
        trace_id = reply.trace_id()
        request_id = reply.request_id()

        # (a) response headers echo the client's own IDs
        assert trace_id == client.last_trace_id
        assert request_id == client.last_request_id

        doc = reply.json()
        if doc["state"] != "done":
            client.result(doc["job"])

        # (b) the access log line for the submission carries both IDs
        lines = [l for l in _log_lines(log_buf) if l["event"] == "request"]
        mine = [l for l in lines if l.get("request_id") == request_id]
        assert mine and mine[0]["trace_id"] == trace_id
        assert mine[0]["method"] == "POST"
        assert "dur_ms" in mine[0]

        # (c) the exported job trace is keyed by the same trace ID and
        # contains per-PE simulated lanes from inside the pool worker.
        trace = client.job_trace(doc["job"])
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["trace_id"] == trace_id
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "queue wait" in names and "execute" in names
        pe_threads = {
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"].startswith("PE")
        }
        assert len(pe_threads) >= 4  # per-PE lanes made it back

        # The status document exposes the trace ID too.
        assert client.status(doc["job"])["trace_id"] == trace_id

    def test_server_generates_request_id_when_absent(self, traced_server):
        server, _ = traced_server
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            headers = {k.lower(): v for k, v in response.getheaders()}
            response.read()
        finally:
            conn.close()
        assert headers.get("x-request-id", "").startswith("req-")
        # A --trace service advertises its trace context back.
        assert parse_traceparent(headers.get("traceparent")) is not None

    def test_error_bodies_carry_request_id(self, traced_server):
        server, _ = traced_server
        client = ServeClient(port=server.port)
        reply = client.request("GET", "/v1/jobs/ffffffff")
        assert reply.status == 404
        assert reply.json()["request_id"] == reply.request_id()
        assert reply.json()["request_id"] == client.last_request_id

    def test_stats_and_metrics_dedup_agree(self, traced_server):
        """Satellite: the --stats dedup column and /metrics never drift.

        Both are sourced from the same admission decision, so after any
        sequence of submissions the engine's ``stats.dedup`` counter
        must equal the sum of the service's dedup+memo submission
        counters.
        """
        server, _ = traced_server
        client = ServeClient(port=server.port)
        spec = matmul_spec("mimd", 4, 4, engine="micro")
        first = client.submit(spec, wait=True, timeout=30)
        if first["state"] != "done":
            client.result(first["job"])
        for _ in range(3):
            again = client.submit(spec)
            assert again["outcome"] in ("memo", "dedup", "cached")

        broker = server.app.broker
        metric_dedup = (
            broker.metrics.value("pasm_serve_submitted_total",
                                 outcome="dedup")
            + broker.metrics.value("pasm_serve_submitted_total",
                                   outcome="memo"))
        assert broker.stats.dedup == metric_dedup
        assert broker.stats.dedup >= 3
        # And the rendered table shows the same number.
        table = broker.stats.summary_table()
        header, sep, *rows = table.splitlines()[1:]
        dedup_col = [c.strip() for c in header.split("|")].index("dedup")
        total_row = [c.strip() for c in rows[-1].split("|")]
        assert float(total_row[dedup_col]) == metric_dedup


class TestUntracedService:
    def test_trace_endpoint_hints_when_tracing_off(self):
        config = ServeConfig(port=0, jobs=1, no_cache=True)
        with ServerThread(config) as server:
            client = ServeClient(port=server.port)
            spec = matmul_spec("serial", 4, 1, engine="micro")
            doc = client.submit(spec, wait=True, timeout=30)
            if doc["state"] != "done":
                client.result(doc["job"])
            reply = client.request("GET", f"/v1/jobs/{doc['job']}/trace")
            assert reply.status == 404
            assert "--trace" in reply.json()["error"]
            # Correlation IDs still flow on an untraced service...
            assert reply.request_id() == client.last_request_id
            # ...but no trace context is advertised.
            assert reply.trace_id() is None
