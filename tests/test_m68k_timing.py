"""Timing-table tests: values cross-checked against the M68000 user's manual.

Each case states the manual's total ``cycles(reads/writes)``; our model must
match the total cycles and split reads into instruction-stream words vs
operand reads such that ``stream + data_reads == manual reads``.
"""

import pytest

from repro.m68k.addressing import Mode, Operand, absl, areg, dreg, imm
from repro.m68k.instructions import Instruction, Size
from repro.m68k.timing import (
    TimingInfo,
    instruction_timing,
    muls_cycles,
    mulu_cycles,
)


def ind(n):
    return Operand(Mode.IND, reg=n)


def postinc(n):
    return Operand(Mode.POSTINC, reg=n)


def predec(n):
    return Operand(Mode.PREDEC, reg=n)


def disp(d, n):
    return Operand(Mode.DISP, reg=n, disp=d)


def check(t: TimingInfo, cycles: int, reads: int, writes: int):
    assert t.cycles == cycles, f"cycles {t.cycles} != {cycles}"
    assert t.stream_words + t.data_reads == reads, (
        f"reads {t.stream_words}+{t.data_reads} != {reads}"
    )
    assert t.data_writes == writes
    assert t.internal_cycles >= 0


# ----------------------------------------------------------------- MOVE
@pytest.mark.parametrize(
    "src,dst,cycles,reads,writes",
    [
        (dreg(0), dreg(1), 4, 1, 0),  # MOVE.W Dn,Dn = 4(1/0)
        (dreg(0), ind(1), 8, 1, 1),  # MOVE.W Dn,(An) = 8(1/1)
        (dreg(0), postinc(1), 8, 1, 1),
        (dreg(0), predec(1), 8, 1, 1),
        (dreg(0), disp(4, 1), 12, 2, 1),  # MOVE.W Dn,d(An) = 12(2/1)
        (dreg(0), Operand(Mode.ABS_L, value=0x1000), 16, 3, 1),
        (ind(0), dreg(1), 8, 2, 0),  # MOVE.W (An),Dn = 8(2/0)
        (postinc(0), dreg(1), 8, 2, 0),
        (predec(0), dreg(1), 10, 2, 0),
        (disp(4, 0), dreg(1), 12, 3, 0),
        (imm(5), dreg(1), 8, 2, 0),  # MOVE.W #,Dn = 8(2/0)
        (postinc(0), postinc(1), 12, 2, 1),  # (An)+ → (An)+ = 12(2/1)
        (disp(2, 0), disp(4, 1), 20, 4, 1),  # d(An) → d(An) = 20(4/1)
    ],
)
def test_move_word_timing(src, dst, cycles, reads, writes):
    t = instruction_timing(Instruction("MOVE", Size.WORD, (src, dst)))
    check(t, cycles, reads, writes)


@pytest.mark.parametrize(
    "src,dst,cycles,reads,writes",
    [
        (dreg(0), dreg(1), 4, 1, 0),  # MOVE.L Dn,Dn = 4(1/0)
        (dreg(0), ind(1), 12, 1, 2),  # MOVE.L Dn,(An) = 12(1/2)
        (ind(0), dreg(1), 12, 3, 0),  # MOVE.L (An),Dn = 12(3/0)
        (imm(5), dreg(1), 12, 3, 0),  # MOVE.L #,Dn = 12(3/0)
        (dreg(0), Operand(Mode.ABS_L, value=0x1000), 20, 3, 2),
    ],
)
def test_move_long_timing(src, dst, cycles, reads, writes):
    t = instruction_timing(Instruction("MOVE", Size.LONG, (src, dst)))
    check(t, cycles, reads, writes)


# ----------------------------------------------------------------- ALU
def test_add_word_register_dest():
    t = instruction_timing(Instruction("ADD", Size.WORD, (dreg(0), dreg(1))))
    check(t, 4, 1, 0)


def test_add_word_memory_source():
    t = instruction_timing(Instruction("ADD", Size.WORD, (postinc(0), dreg(1))))
    check(t, 8, 2, 0)


def test_add_word_memory_dest():
    # ADD.W Dn,(An)+ = 8(1/1) + ea 4(1/0) = 12(2/1)
    t = instruction_timing(Instruction("ADD", Size.WORD, (dreg(0), postinc(1))))
    check(t, 12, 2, 1)


def test_add_long_register_source():
    # ADD.L Dn,Dn = 8(1/0)
    t = instruction_timing(Instruction("ADD", Size.LONG, (dreg(0), dreg(1))))
    check(t, 8, 1, 0)


def test_add_long_memory_source():
    # ADD.L (An),Dn = 6(1/0) + 8(2/0) = 14(3/0)
    t = instruction_timing(Instruction("ADD", Size.LONG, (ind(0), dreg(1))))
    check(t, 14, 3, 0)


def test_cmp_word():
    t = instruction_timing(Instruction("CMP", Size.WORD, (postinc(0), dreg(1))))
    check(t, 8, 2, 0)


def test_cmp_immediate_to_dreg():
    t = instruction_timing(Instruction("CMPI", Size.WORD, (imm(7), dreg(1))))
    check(t, 8, 2, 0)


def test_addq_to_dreg():
    t = instruction_timing(Instruction("ADDQ", Size.WORD, (imm(1), dreg(1))))
    check(t, 4, 1, 0)


def test_addq_to_areg():
    t = instruction_timing(Instruction("ADDQ", Size.WORD, (imm(2), areg(1))))
    check(t, 8, 1, 0)


def test_addq_to_memory():
    t = instruction_timing(Instruction("ADDQ", Size.WORD, (imm(2), ind(1))))
    check(t, 12, 2, 1)


def test_adda_word():
    # ADDA.W Dn,An = 8(1/0)
    t = instruction_timing(Instruction("ADDA", Size.WORD, (dreg(0), areg(1))))
    check(t, 8, 1, 0)


def test_moveq():
    t = instruction_timing(Instruction("MOVEQ", None, (imm(3), dreg(1))))
    check(t, 4, 1, 0)


def test_clr_dreg():
    t = instruction_timing(Instruction("CLR", Size.WORD, (dreg(0),)))
    check(t, 4, 1, 0)


def test_clr_memory():
    # CLR.W (An) = 8(1/1) + ea 4(1/0) = 12(2/1)
    t = instruction_timing(Instruction("CLR", Size.WORD, (ind(0),)))
    check(t, 12, 2, 1)


def test_tst_memory():
    t = instruction_timing(Instruction("TST", Size.WORD, (ind(0),)))
    check(t, 8, 2, 0)


# ----------------------------------------------------------------- MUL
def test_mulu_best_case():
    t = instruction_timing(
        Instruction("MULU", Size.WORD, (dreg(0), dreg(1))), src_value=0
    )
    check(t, 38, 1, 0)


def test_mulu_worst_case():
    t = instruction_timing(
        Instruction("MULU", Size.WORD, (dreg(0), dreg(1))), src_value=0xFFFF
    )
    check(t, 38 + 32, 1, 0)


def test_mulu_formula_examples():
    assert mulu_cycles(0) == 38
    assert mulu_cycles(1) == 40
    assert mulu_cycles(0b1010_1010) == 38 + 8
    assert mulu_cycles(0xFFFF) == 70


def test_muls_formula_examples():
    # 0xFFFF<<1 has exactly one 01/10 boundary → 40 cycles.
    assert muls_cycles(0xFFFF) == 40
    assert muls_cycles(0) == 38
    # alternating bits: maximal transitions = 16
    assert muls_cycles(0b0101010101010101) == 38 + 2 * 16


def test_mulu_with_memory_source():
    t = instruction_timing(
        Instruction("MULU", Size.WORD, (postinc(0), dreg(1))), src_value=0xF
    )
    check(t, 38 + 8 + 4, 2, 0)


def test_mulu_requires_src_value():
    with pytest.raises(Exception):
        instruction_timing(Instruction("MULU", Size.WORD, (dreg(0), dreg(1))))


# ----------------------------------------------------------------- shifts
def test_lsl_immediate():
    t = instruction_timing(
        Instruction("LSL", Size.WORD, (imm(8), dreg(1))), shift_count=8
    )
    check(t, 6 + 16, 1, 0)


def test_lsr_register_count():
    t = instruction_timing(
        Instruction("LSR", Size.WORD, (dreg(0), dreg(1))), shift_count=3
    )
    check(t, 12, 1, 0)


def test_shift_count_from_immediate_operand():
    t = instruction_timing(Instruction("LSL", Size.WORD, (imm(2), dreg(1))))
    assert t.cycles == 10


# ----------------------------------------------------------------- control
def test_bra():
    t = instruction_timing(Instruction("BRA", None, (), target=0x100))
    check(t, 10, 2, 0)


def test_bcc_taken():
    t = instruction_timing(
        Instruction("BNE", None, (), target=0x100), branch_taken=True
    )
    check(t, 10, 2, 0)


def test_bcc_not_taken():
    t = instruction_timing(
        Instruction("BNE", None, (), target=0x100), branch_taken=False
    )
    check(t, 12, 2, 0)


def test_dbra_loop_back():
    t = instruction_timing(
        Instruction("DBRA", None, (dreg(0),), target=0x100), branch_taken=True
    )
    check(t, 10, 2, 0)


def test_dbra_expired():
    t = instruction_timing(
        Instruction("DBRA", None, (dreg(0),), target=0x100),
        branch_taken=False,
        dbcc_expired=True,
    )
    check(t, 14, 3, 0)


def test_dbcc_condition_true():
    t = instruction_timing(
        Instruction("DBEQ", None, (dreg(0),), target=0x100), branch_taken=False
    )
    check(t, 12, 2, 0)


def test_jmp_indirect():
    t = instruction_timing(Instruction("JMP", None, (ind(0),)))
    check(t, 8, 2, 0)


def test_jmp_absolute_long():
    t = instruction_timing(Instruction("JMP", None, (absl(0x1000),)))
    check(t, 12, 3, 0)


def test_jsr_absolute_long():
    t = instruction_timing(Instruction("JSR", None, (absl(0x1000),)))
    check(t, 20, 3, 2)


def test_rts():
    t = instruction_timing(Instruction("RTS"))
    check(t, 16, 4, 0)


def test_bsr():
    t = instruction_timing(Instruction("BSR", None, (), target=0x10))
    check(t, 18, 2, 2)


# ----------------------------------------------------------------- misc
def test_lea_displacement():
    t = instruction_timing(Instruction("LEA", None, (disp(8, 0), areg(1))))
    check(t, 8, 2, 0)


def test_nop():
    check(instruction_timing(Instruction("NOP")), 4, 1, 0)


def test_swap():
    check(instruction_timing(Instruction("SWAP", None, (dreg(0),))), 4, 1, 0)


def test_exg():
    check(instruction_timing(Instruction("EXG", None, (dreg(0), areg(0)))), 6, 1, 0)


def test_internal_cycles_nonnegative_across_table():
    """Structural invariant: no timing entry claims fewer cycles than its
    bus accesses require."""
    cases = [
        Instruction("MOVE", Size.WORD, (disp(2, 0), disp(4, 1))),
        Instruction("MOVE", Size.LONG, (postinc(0), predec(1))),
        Instruction("ADD", Size.LONG, (dreg(0), ind(1))),
        Instruction("SUBI", Size.WORD, (imm(1), ind(0))),
        Instruction("ANDI", Size.LONG, (imm(1), dreg(0))),
        Instruction("NEG", Size.WORD, (ind(0),)),
        Instruction("RTS"),
    ]
    for instr in cases:
        t = instruction_timing(instr)
        assert t.internal_cycles >= 0, str(instr)


def test_timing_info_with_wait_states():
    t = TimingInfo(cycles=12, stream_words=2, data_reads=1, data_writes=0)
    assert t.with_wait_states(1, 1) == 15
    assert t.with_wait_states(0, 2) == 14
    assert t.accesses == 3


def test_timing_info_addition():
    a = TimingInfo(4, 1) + TimingInfo(8, 1, 1, 0)
    assert a == TimingInfo(12, 2, 1, 0)
