"""Edge cases and error paths across the machine model."""

import json

import pytest

from repro.errors import (
    BusError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from repro.experiments.results import ExperimentResult
from repro.fetch_unit import FetchUnitQueue, MaskRegister, sync_item
from repro.m68k.assembler import assemble
from repro.machine import ExecutionMode, MachineResult, PASMMachine, PrototypeConfig
from repro.machine.config import PrototypeConfig as Config
from repro.mc import EnqueueBlock, Loop, MCCostModel, MicroController, SetMask
from repro.memory import RefreshModel
from repro.pe import ProcessingElement
from repro.programs.data import MatmulLayout
from repro.sim import Environment

CFG = PrototypeConfig()


class TestConfigValidation:
    def test_npes_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Config(n_pes=12, n_mcs=4)

    def test_npes_multiple_of_mcs(self):
        with pytest.raises(ConfigurationError):
            Config(n_pes=16, n_mcs=3)

    def test_queue_cannot_be_slower_than_ram(self):
        with pytest.raises(ConfigurationError):
            Config(ws_main=0, ws_queue=1)

    def test_with_overrides_returns_new_config(self):
        cfg = CFG.with_overrides(ws_main=2)
        assert cfg.ws_main == 2 and CFG.ws_main == 1

    def test_mc_of_pe(self):
        assert [CFG.mc_of_pe(p) for p in (0, 1, 4, 5, 15)] == [0, 1, 0, 1, 3]
        assert CFG.pes_of_mc(2) == [2, 6, 10, 14]

    def test_device_symbols_complete(self):
        symbols = CFG.device_symbols()
        assert {"NETTX", "NETRX", "NETSTAT", "SIMDSPACE", "TIMER"} <= set(
            symbols
        )


class TestPEBusErrors:
    def make_pe(self, queue=None):
        env = Environment()
        pe = ProcessingElement(env, CFG, physical_id=0, queue=queue,
                               pe_slot=0)
        return env, pe

    def run_and_expect(self, source, exc_type, queue=None):
        env, pe = self.make_pe(queue)
        prog = assemble(source, predefined=CFG.device_symbols())
        pe.load_program(prog)
        proc = pe.run_process()
        with pytest.raises(exc_type):
            env.run(until=proc)

    def test_word_write_to_net_tx_rejected(self):
        """The network data path is 8 bits; a word store is a bus error."""
        env = Environment()
        from repro.network import CircuitSwitchedNetwork, ExtraStageCubeTopology, NetworkFabric

        net = CircuitSwitchedNetwork(ExtraStageCubeTopology(16))
        fabric = NetworkFabric(env, net)
        pe = ProcessingElement(env, CFG, 0, port=fabric.ports[0], pe_slot=0)
        prog = assemble("    MOVE.W D0,NETTX\n    HALT",
                        predefined=CFG.device_symbols())
        pe.load_program(prog)
        with pytest.raises(BusError, match="8 bits"):
            env.run(until=pe.run_process())

    def test_simd_fetch_without_fetch_unit(self):
        self.run_and_expect("    JMP SIMDSPACE\n    HALT", BusError)

    def test_unmapped_address(self):
        self.run_and_expect("    MOVE.W $300000,D0\n    HALT", BusError)

    def test_missing_instruction(self):
        self.run_and_expect("    JMP $2000\n    HALT", BusError)

    def test_barrier_read_consuming_instruction_detected(self):
        """A data read from SIMD space must find a sync word, not an
        instruction — mixing them is a program bug the model reports."""
        env = Environment()
        queue = FetchUnitQueue(env, 16)
        from repro.fetch_unit.queue import QueueItem
        from repro.m68k.instructions import Instruction

        queue.try_enqueue(QueueItem(Instruction("NOP"), 1, frozenset({0})))
        pe = ProcessingElement(env, CFG, 0, queue=queue, pe_slot=0)
        prog = assemble("    MOVE.W SIMDSPACE,D0\n    HALT",
                        predefined=CFG.device_symbols())
        pe.load_program(prog)
        with pytest.raises(SimulationError, match="barrier read"):
            env.run(until=pe.run_process())

    def test_instruction_fetch_consuming_sync_word_detected(self):
        env = Environment()
        queue = FetchUnitQueue(env, 16)
        queue.try_enqueue(sync_item({0}))
        pe = ProcessingElement(env, CFG, 0, queue=queue, pe_slot=0)
        prog = assemble("    JMP SIMDSPACE",
                        predefined=CFG.device_symbols())
        pe.load_program(prog)
        with pytest.raises(SimulationError, match="sync word"):
            env.run(until=pe.run_process())

    def test_timer_read(self):
        env, pe = self.make_pe()
        prog = assemble(
            """
            NOP
            NOP
            MOVE.W  TIMER,D0
            MOVE.W  D0,$4000
            HALT
            """,
            predefined=CFG.device_symbols(),
        )
        pe.load_program(prog)
        env.run(until=pe.run_process())
        stored = pe.memory.read(0x4000, 2)
        assert 0 < stored <= env.now


class TestMCCostModel:
    def test_costs_positive_and_ordered(self):
        costs = MCCostModel(CFG)
        assert costs.device_write > 0
        assert costs.loop_exit > costs.loop_back
        assert costs.op_cost(SetMask((0,))) == costs.device_write

    def test_unknown_op_rejected(self):
        costs = MCCostModel(CFG)
        with pytest.raises(ConfigurationError):
            costs.op_cost(Loop(1, ()))  # Loop has no single issue cost

    def test_zero_iteration_loop_free(self):
        env = Environment()
        mask = MaskRegister((0,))
        queue = FetchUnitQueue(env, 16)
        from repro.fetch_unit import FetchUnitController

        controller = FetchUnitController(env, queue, mask)
        mc = MicroController(env, CFG, mask, controller)
        done = env.process(mc.run_program([Loop(0, (EnqueueBlock("x"),))]))
        env.run(until=done)
        assert mc.busy_cycles == 0.0

    def test_negative_loop_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Loop(-1, ())


class TestLayoutValidation:
    def test_n_not_multiple_of_p(self):
        with pytest.raises(ConfigurationError):
            MatmulLayout(10, 4)

    def test_n_smaller_than_p(self):
        with pytest.raises(ConfigurationError):
            MatmulLayout(4, 8)

    def test_serial_b_not_doubled(self):
        serial = MatmulLayout(16, 1)
        parallel = MatmulLayout(16, 4)
        assert not serial.b_doubled and parallel.b_doubled
        assert serial.b_col_bytes == 32
        assert parallel.b_col_bytes == 64

    def test_regions_do_not_overlap(self):
        for n, p in ((256, 4), (256, 16), (64, 1)):
            lay = MatmulLayout(n, p)
            assert lay.text_base < lay.tt_base < lay.bptr_base < lay.a_base
            assert lay.a_base < lay.b_base < lay.c_base < lay.end
            assert lay.end <= CFG.ram_size

    def test_vp0(self):
        lay = MatmulLayout(16, 4)
        assert [lay.vp0(i) for i in range(4)] == [0, 4, 8, 12]


class TestResultsSerialization:
    def make(self):
        return ExperimentResult(
            experiment_id="figX",
            title="test",
            headers=["a", "b"],
            rows=[(1, 2.5), (3, 4.0)],
            series={"s": [(1.0, 2.0)]},
            paper_says="up",
            we_measure="up indeed",
        )

    def test_json_roundtrip(self):
        doc = json.loads(self.make().to_json())
        assert doc["experiment_id"] == "figX"
        assert doc["rows"] == [[1, 2.5], [3, 4.0]]
        assert doc["series"]["s"] == [[1.0, 2.0]]

    def test_render_without_plot(self):
        text = self.make().render(plot=False)
        assert "figX" in text and "paper:" in text

    def test_machine_result_empty_breakdown(self):
        r = MachineResult(
            mode=ExecutionMode.SERIAL, p=1, cycles=0.0,
            per_pe_cycles={}, per_pe_categories={}, instructions=0,
        )
        assert r.breakdown() == {}


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not ReproError:
                    assert issubclass(obj, ReproError), name


class TestRefreshInteraction:
    def test_heavy_refresh_slows_serial_run(self):
        src = "    NOP\n" * 50 + "    HALT"
        quiet = CFG.with_overrides(refresh=RefreshModel(100, 0))
        noisy = CFG.with_overrides(refresh=RefreshModel(100, 20))
        r_quiet = PASMMachine(quiet, 1).run_serial(assemble(src))
        r_noisy = PASMMachine(noisy, 1).run_serial(assemble(src))
        assert r_noisy.cycles > r_quiet.cycles

    def test_refresh_does_not_affect_queue_fetches(self):
        """Queue fetches are static RAM: SIMD broadcast time is refresh-
        free even under heavy refresh."""
        noisy = CFG.with_overrides(refresh=RefreshModel(100, 20))
        blocks = {
            "body": assemble("    MULU D1,D2").instruction_list(),
            "fini": assemble("    HALT").instruction_list(),
        }
        quiet_m = PASMMachine(CFG.with_overrides(
            refresh=RefreshModel(100, 0)), 4)
        noisy_m = PASMMachine(noisy, 4)
        program = [Loop(20, (EnqueueBlock("body"),)), EnqueueBlock("fini")]
        r_quiet = quiet_m.run_simd(program, dict(blocks))
        r_noisy = noisy_m.run_simd(program, dict(blocks))
        # MC issue costs see refresh, but the PE-bound broadcast stream
        # must not: totals stay within one refresh window of each other.
        assert abs(r_noisy.cycles - r_quiet.cycles) <= 40
