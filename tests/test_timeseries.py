"""The timeseries layer: rate derivation, ring bounds, aggregation.

These are the semantics ``pasm-top`` and the SLO evaluator stand on:
counter resets must never produce negative rates, retention must be
bounded on both axes (points per series *and* distinct series), and the
fleet aggregate must sum what sums and average what doesn't.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.procstats import ProcessStats
from repro.obs.timeseries import (
    TimeseriesStore,
    aggregate_timeseries,
    increase,
    parse_series_key,
    rate_points,
    series_key,
)
from repro.perf import MetricsRegistry


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


def make_store(registry=None, **kwargs):
    clock = FakeClock()
    store = TimeseriesStore(registry or MetricsRegistry(),
                            clock=clock, **kwargs)
    return store, clock


# ---------------------------------------------------------------------------
# Keys
class TestSeriesKey:
    def test_round_trips_with_sorted_labels(self):
        key = series_key("x_total", {"b": 2, "a": "one"})
        assert key == "x_total{a=one,b=2}"
        assert parse_series_key(key) == ("x_total", {"a": "one", "b": "2"})

    def test_bare_name_round_trips(self):
        assert parse_series_key(series_key("up")) == ("up", {})


# ---------------------------------------------------------------------------
# Counter math
class TestCounterMath:
    def test_increase_is_last_minus_first_without_resets(self):
        pts = [(0, 10.0), (5, 12.0), (10, 30.0)]
        assert increase(pts) == 20.0

    def test_increase_survives_counter_reset(self):
        # 10 -> 14 (+4), restart to 3 (+3: the post-reset value IS the
        # increase), 3 -> 8 (+5).
        pts = [(0, 10.0), (5, 14.0), (10, 3.0), (15, 8.0)]
        assert increase(pts) == 12.0

    def test_rate_points_stamp_at_later_sample(self):
        pts = [(0, 0.0), (10, 50.0)]
        assert rate_points(pts) == [(10, 5.0)]

    def test_rate_points_never_negative_through_reset(self):
        pts = [(0, 100.0), (10, 5.0)]
        (ts, rate), = rate_points(pts)
        assert ts == 10 and rate == 0.5  # post-reset 5 over 10s

    def test_zero_dt_is_skipped_not_divided(self):
        pts = [(5, 1.0), (5, 2.0), (10, 3.0)]
        assert all(r >= 0 for _, r in rate_points(pts))
        assert len(rate_points(pts)) == 1

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=40))
    def test_rates_conserve_total_increase(self, increments):
        # A cumulative counter built from non-negative increments:
        # sum(rate * dt) must reproduce the total increase exactly
        # (no reset in this stream), and every rate is non-negative.
        total, pts = 0.0, []
        for i, inc in enumerate(increments):
            total += inc
            pts.append((float(i * 5), total))
        rates = rate_points(pts)
        recovered = sum(r * 5.0 for _, r in rates)
        assert recovered == pytest.approx(total - increments[0])
        assert all(r >= 0.0 for _, r in rates)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=40))
    def test_rates_stay_nonnegative_through_any_reset(self, values):
        # Arbitrary cumulative stream, including drops (restarts):
        # rates and increases never go negative.
        pts = [(float(i * 3), v) for i, v in enumerate(values)]
        assert all(r >= 0.0 for _, r in rate_points(pts))
        assert increase(pts) >= 0.0


# ---------------------------------------------------------------------------
# The store
class TestTimeseriesStore:
    def test_samples_counters_gauges_and_summaries(self):
        registry = MetricsRegistry()
        registry.inc("jobs_total", 3, lane="a")
        registry.set_gauge("depth", 7)
        registry.observe("lat_seconds", 0.25)
        store, _ = make_store(registry)
        store.sample()
        assert store.kind("jobs_total{lane=a}") == "counter"
        assert store.kind("depth") == "gauge"
        assert store.kind("lat_seconds{quantile=0.95}") == "quantile"
        assert store.kind("lat_seconds_count") == "counter"
        assert store.latest("depth")[1] == 7.0

    def test_retention_ring_evicts_oldest_points(self):
        registry = MetricsRegistry()
        store, clock = make_store(registry, retention_points=5)
        for i in range(12):
            registry.set_gauge("g", i)
            store.sample(clock.advance(1.0))
        pts = store.points("g")
        assert len(pts) == 5
        assert [v for _, v in pts] == [7.0, 8.0, 9.0, 10.0, 11.0]

    def test_max_series_evicts_oldest_created(self):
        registry = MetricsRegistry()
        store, clock = make_store(registry, max_series=3)
        for i in range(6):
            registry.set_gauge("g", 1, idx=i)
            store.sample(clock.advance(1.0))
        keys = set(store.keys())
        assert len(keys) == 3
        assert "g{idx=5}" in keys and "g{idx=0}" not in keys
        assert store.series_evicted > 0

    def test_window_increase_anchors_point_before_window(self):
        registry = MetricsRegistry()
        store, clock = make_store(registry)
        registry.inc("c_total", 10)
        store.sample(clock.advance(5.0))
        registry.inc("c_total", 4)
        t_in_window = clock.advance(5.0)
        store.sample(t_in_window)
        # Window opens between the two samples: the +4 step lands
        # inside it and must not be swallowed by the boundary.
        assert store.window_increase(
            "c_total", since=t_in_window - 2.0) == 4.0

    def test_window_increase_handles_reset_inside_window(self):
        registry = MetricsRegistry()
        store, clock = make_store(registry)
        pts = [(clock.advance(5.0), v) for v in (50.0, 60.0, 2.0)]
        for t, v in pts:
            store._append("c_total", "counter", t, v)
        assert store.window_increase("c_total", since=pts[0][0]) == 12.0

    def test_to_doc_since_filters_and_derives_rates(self):
        registry = MetricsRegistry()
        store, clock = make_store(registry)
        for amount in (5, 5, 5):
            registry.inc("c_total", amount)
            store.sample(clock.advance(10.0))
        doc = store.to_doc()
        entry = doc["series"]["c_total"]
        assert len(entry["points"]) == 3
        assert [r for _, r in entry["rate"]] == [0.5, 0.5]
        cutoff = clock.now - 15.0
        windowed = store.to_doc(since=cutoff)
        assert len(windowed["series"]["c_total"]["points"]) == 2

    def test_summary_with_no_observations_yields_no_series(self):
        # A described-but-never-observed summary must not fabricate a
        # quantile series — the "quantile of an empty window" shows up
        # as *absence*, which the SLO layer reads as healthy no-data.
        registry = MetricsRegistry()
        registry.describe("lat_seconds", "summary", "latency")
        store, _ = make_store(registry)
        store.sample()
        assert store.matching("lat_seconds") == []
        assert store.points("lat_seconds{quantile=0.95}") == []

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            TimeseriesStore(MetricsRegistry(), interval_s=0)
        with pytest.raises(ValueError):
            TimeseriesStore(MetricsRegistry(), retention_points=1)
        with pytest.raises(ValueError):
            TimeseriesStore(MetricsRegistry(), max_series=0)


# ---------------------------------------------------------------------------
# Fleet aggregation
class TestAggregateTimeseries:
    @staticmethod
    def doc(series, interval=5.0):
        return {"interval_s": interval, "series": series}

    def test_counters_and_gauges_sum_across_instances(self):
        a = self.doc({"jobs_total": {"kind": "counter",
                                     "points": [[10.0, 4.0]],
                                     "rate": [[10.0, 0.4]]},
                      "depth": {"kind": "gauge", "points": [[10.0, 3.0]]}})
        b = self.doc({"jobs_total": {"kind": "counter",
                                     "points": [[11.0, 6.0]],
                                     "rate": [[11.0, 0.6]]},
                      "depth": {"kind": "gauge", "points": [[11.0, 5.0]]}})
        merged = aggregate_timeseries([a, b])
        assert merged["instances"] == 2
        # 10.0 and 11.0 land in the same 5s bucket.
        assert merged["series"]["jobs_total"]["points"] == [[10.0, 10.0]]
        assert merged["series"]["jobs_total"]["rate"] == [[10.0, 1.0]]
        assert merged["series"]["depth"]["points"] == [[10.0, 8.0]]

    def test_ratio_gauges_average_and_quantiles_take_max(self):
        a = self.doc({"hit_ratio": {"kind": "gauge",
                                    "points": [[10.0, 0.2]]},
                      "lat{quantile=0.95}": {"kind": "quantile",
                                             "points": [[10.0, 1.5]]}})
        b = self.doc({"hit_ratio": {"kind": "gauge",
                                    "points": [[10.0, 0.8]]},
                      "lat{quantile=0.95}": {"kind": "quantile",
                                             "points": [[10.0, 0.5]]}})
        merged = aggregate_timeseries([a, b])
        assert merged["series"]["hit_ratio"]["points"] == [[10.0, 0.5]]
        assert merged["series"]["lat{quantile=0.95}"]["points"] \
            == [[10.0, 1.5]]

    def test_empty_and_malformed_docs_are_skipped(self):
        merged = aggregate_timeseries([{}, {"error": "http 404"}, None])
        assert merged["instances"] == 0
        assert merged["series"] == {}


# ---------------------------------------------------------------------------
# Process self-metrics
class TestProcessStats:
    def test_collect_populates_the_process_family(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        stats = ProcessStats(registry, clock=clock)
        clock.advance(3.0)
        stats.collect()
        assert registry.value("pasm_process_resident_memory_bytes") > 0
        assert registry.value("pasm_process_uptime_seconds") \
            == pytest.approx(3.0)
        assert registry.total("pasm_process_cpu_seconds_total") > 0

    def test_cpu_counter_is_monotone_across_collections(self):
        registry = MetricsRegistry()
        stats = ProcessStats(registry)
        stats.collect()
        first = registry.total("pasm_process_cpu_seconds_total")
        sum(i * i for i in range(50_000))  # burn a little CPU
        stats.collect()
        assert registry.total("pasm_process_cpu_seconds_total") >= first

    def test_open_fds_reported_where_proc_exists(self):
        import os

        registry = MetricsRegistry()
        ProcessStats(registry).collect()
        if os.path.isdir("/proc/self/fd"):
            assert registry.value("pasm_process_open_fds") > 0
