"""Tests for the assembly-language Micro Controller, including the
cross-validation of the MC cost DSL against real executed 68000 code."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.m68k.assembler import assemble
from repro.mc.assembly_mc import MC_DEVICE_SYMBOLS
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.data import assemble_result, load_pe_matrices, read_pe_result

CFG = PrototypeConfig()


def mc_asm(source: str):
    return assemble(source, predefined=dict(MC_DEVICE_SYMBOLS))


def pe_block(source: str):
    return assemble(source, predefined=CFG.device_symbols()).instruction_list()


class TestAssemblyMC:
    def test_basic_broadcast(self):
        machine = PASMMachine(CFG, partition_size=4)
        blocks = {
            "inc": pe_block("    ADDQ.W #1,D0"),
            "fini": pe_block("    MOVE.W D0,$4000\n    HALT"),
        }
        program = mc_asm(
            """
            MOVE.W  #%1111,FUMASK
            MOVE.W  #9,D2
    loop:   MOVE.W  #0,FUCTRL
            DBRA    D2,loop
            MOVE.W  #1,FUCTRL
            HALT
            """
        )
        machine.run_simd_assembly(
            program, blocks, block_ids={0: "inc", 1: "fini"}
        )
        for lp in range(4):
            assert machine.pe(lp).memory.read(0x4000, 2) == 10

    def test_mask_control_from_assembly(self):
        machine = PASMMachine(CFG, partition_size=4)
        blocks = {
            "inc": pe_block("    ADDQ.W #1,D0"),
            "fini": pe_block("    MOVE.W D0,$4000\n    HALT"),
        }
        program = mc_asm(
            """
            MOVE.W  #%0101,FUMASK    ; slots 0 and 2 only
            MOVE.W  #0,FUCTRL
            MOVE.W  #%1111,FUMASK
            MOVE.W  #1,FUCTRL
            HALT
            """
        )
        machine.run_simd_assembly(
            program, blocks, block_ids={0: "inc", 1: "fini"}
        )
        values = [machine.pe(lp).memory.read(0x4000, 2) for lp in range(4)]
        assert values == [1, 0, 1, 0]

    def test_sync_words_and_wait_polling(self):
        """FUSYNC provisions barrier tokens that a *broadcast barrier
        read* consumes; FUWAIT lets the MC drain its controller."""
        machine = PASMMachine(CFG, partition_size=4)
        blocks = {
            "barrier": pe_block("    .timecat sync\n    MOVE.W SIMDSPACE,D0"),
            "fini": pe_block("    MOVE.W D0,$4000\n    HALT"),
        }
        program = mc_asm(
            """
            MOVE.W  #0,FUCTRL       ; broadcast the barrier-read instruction
            MOVE.W  #1,FUSYNC       ; ... and the token it consumes
    wait:   MOVE.W  FUWAIT,D0
            BNE     wait
            MOVE.W  #1,FUCTRL
            HALT
            """
        )
        machine.run_simd_assembly(
            program, blocks, block_ids={0: "barrier", 1: "fini"}
        )
        assert machine.queues[0].words_used == 0  # token consumed
        for lp in range(4):
            assert machine.pe(lp).bus.sync_reads == 1

    def test_unknown_block_id_rejected(self):
        machine = PASMMachine(CFG, partition_size=4)
        blocks = {"fini": pe_block("    HALT")}
        program = mc_asm("    MOVE.W #9,FUCTRL\n    HALT")
        with pytest.raises(ConfigurationError, match="unknown block id"):
            machine.run_simd_assembly(program, blocks, block_ids={1: "fini"})


class TestDSLCrossValidation:
    """The assembled MC program and the timed DSL must agree — this is
    what licenses the DSL's cycle accounting."""

    @pytest.fixture(scope="class")
    def runs(self):
        n, p = 8, 4
        a, b = generate_matrices(n)
        bundle = build_matmul(
            ExecutionMode.SIMD, n, p, device_symbols=CFG.device_symbols()
        )

        def run_dsl():
            machine = PASMMachine(CFG, partition_size=p)
            for lp in range(p):
                load_pe_matrices(machine.pe(lp).memory, bundle.layout, lp, a, b)
            machine.connect_shift_circuit()
            result = machine.run_simd(
                bundle.simd.mc_program, bundle.simd.blocks,
                data_programs=bundle.simd.data_programs,
            )
            return machine, result

        def run_asm():
            machine = PASMMachine(CFG, partition_size=p)
            for lp in range(p):
                load_pe_matrices(machine.pe(lp).memory, bundle.layout, lp, a, b)
            machine.connect_shift_circuit()
            program = mc_asm(bundle.simd.mc_assembly_source)
            result = machine.run_simd_assembly(
                program, bundle.simd.blocks, bundle.simd.block_ids,
                data_programs=bundle.simd.data_programs,
            )
            return machine, result

        return run_dsl(), run_asm(), (a, b, bundle)

    def test_both_compute_the_product(self, runs):
        (m_dsl, _), (m_asm, _), (a, b, bundle) = runs
        want = expected_product(a, b)
        for machine in (m_dsl, m_asm):
            got = assemble_result(
                [read_pe_result(machine.pe(i).memory, bundle.layout)
                 for i in range(4)]
            )
            assert np.array_equal(got, want)

    def test_timing_agreement(self, runs):
        """Executed MC code lands within 2% of the DSL's cost model."""
        (_, r_dsl), (_, r_asm), _ = runs
        assert r_asm.cycles == pytest.approx(r_dsl.cycles, rel=0.02)

    def test_breakdowns_agree(self, runs):
        (_, r_dsl), (_, r_asm), _ = runs
        d, a_ = r_dsl.breakdown(), r_asm.breakdown()
        for cat in ("mult", "comm"):
            assert a_[cat] == pytest.approx(d[cat], rel=0.03), cat

    def test_queue_behaviour_identical(self, runs):
        """Same blocks in the same order: release counts match exactly."""
        (m_dsl, _), (m_asm, _), _ = runs
        assert m_asm.queues[0].releases == m_dsl.queues[0].releases
