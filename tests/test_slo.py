"""SLO burn-rate alerting: the math, the state machine, the surfaces.

The multi-window rule and the resolve hysteresis are what keep the
pager honest — a breach must be sustained *and* current to fire, and a
burn rate oscillating around the threshold must not flap.  Everything
here drives the evaluator with a fake clock and hand-fed samples.
"""

import pytest

from repro.obs.slo import FIRING, OK, SLO, SLOEvaluator, default_slos
from repro.obs.timeseries import TimeseriesStore
from repro.perf import MetricsRegistry


class FakeClock:
    def __init__(self, now=10_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


def gauge_slo(**overrides):
    kwargs = dict(name="queue", kind="gauge", metric="depth", target=10.0,
                  fast_window_s=10.0, slow_window_s=30.0,
                  fast_burn=2.0, slow_burn=1.0, resolve_after=2)
    kwargs.update(overrides)
    return SLO(**kwargs)


def make_world(slo, *, metrics=None, **eval_kwargs):
    registry = MetricsRegistry()
    clock = FakeClock()
    store = TimeseriesStore(registry, clock=clock)
    evaluator = SLOEvaluator([slo], store, metrics=metrics, clock=clock,
                             **eval_kwargs)
    return registry, store, evaluator, clock


def feed(registry, store, clock, value, *, steps=8, dt=5.0):
    for _ in range(steps):
        registry.set_gauge("depth", value)
        store.sample(clock.advance(dt))


# ---------------------------------------------------------------------------
# The SLO dataclass
class TestSLOValidation:
    def test_rejects_unknown_kind_and_direction(self):
        with pytest.raises(ValueError, match="kind"):
            gauge_slo(kind="histogram")
        with pytest.raises(ValueError, match="direction"):
            gauge_slo(direction="sideways")

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="window"):
            gauge_slo(fast_window_s=30.0, slow_window_s=10.0)


class TestBurnRate:
    def test_upper_direction_is_measured_over_target(self):
        slo = gauge_slo(target=10.0)
        assert slo.burn_rate(25.0) == 2.5
        assert slo.burn_rate(5.0) == 0.5

    def test_no_data_burns_nothing(self):
        assert gauge_slo().burn_rate(None) == 0.0

    def test_lower_direction_inverts_and_handles_zero(self):
        slo = gauge_slo(direction="lower", target=0.5)
        assert slo.burn_rate(0.25) == 2.0  # below target -> burning
        assert slo.burn_rate(1.0) == 0.5   # above target -> healthy
        assert slo.burn_rate(0.0) == float("inf")


class TestRatioMeasure:
    def test_bad_class_patterns_match_by_first_digit(self):
        slo = SLO(name="err", kind="ratio", metric="req_total", target=0.05,
                  fast_window_s=10.0, slow_window_s=30.0)
        registry = MetricsRegistry()
        clock = FakeClock()
        store = TimeseriesStore(registry, clock=clock)
        for status in (200, 429, 503):
            registry.inc("req_total", 0, status=status)
        store.sample(clock.now)  # zero anchor for every series
        registry.inc("req_total", 90, status=200)
        registry.inc("req_total", 6, status=429)
        registry.inc("req_total", 4, status=503)
        store.sample(clock.advance(5.0))
        measured = slo.measure(store, now=clock.now, window_s=30.0)
        assert measured == pytest.approx(0.10)  # (6+4)/100

    def test_below_min_denominator_is_no_data(self):
        slo = SLO(name="err", kind="ratio", metric="req_total", target=0.05,
                  fast_window_s=10.0, slow_window_s=30.0,
                  min_denominator=5.0)
        registry = MetricsRegistry()
        clock = FakeClock()
        store = TimeseriesStore(registry, clock=clock)
        registry.inc("req_total", 0, status=429)
        store.sample(clock.now)
        registry.inc("req_total", 2, status=429)
        store.sample(clock.advance(5.0))
        assert slo.measure(store, now=clock.now, window_s=30.0) is None

    def test_quantile_of_empty_window_is_no_data(self):
        slo = SLO(name="lat", kind="quantile", metric="lat_seconds",
                  target=1.0, labels=(("quantile", "0.95"),),
                  fast_window_s=10.0, slow_window_s=30.0)
        store = TimeseriesStore(MetricsRegistry(), clock=FakeClock())
        assert slo.measure(store, now=10_000.0, window_s=30.0) is None
        assert slo.burn_rate(None) == 0.0


# ---------------------------------------------------------------------------
# The state machine
class TestEvaluator:
    def test_fire_needs_both_windows(self):
        registry, store, evaluator, clock = make_world(gauge_slo())
        state = evaluator.states["queue"]
        # Breach only the fast window: 25s of calm history, 10s of
        # saturation.  Slow-window mean stays under target * slow_burn.
        feed(registry, store, clock, 1.0, steps=5)
        feed(registry, store, clock, 30.0, steps=2)
        evaluator.evaluate()
        assert state.state == OK
        # Sustain the saturation until the slow window breaches too.
        feed(registry, store, clock, 30.0, steps=6)
        transitioned = evaluator.evaluate()
        assert state.state == FIRING
        assert [s.slo.name for s in transitioned] == ["queue"]

    def test_hysteresis_fire_resolve_refire(self):
        fired, resolved = [], []
        metrics = MetricsRegistry()
        registry, store, evaluator, clock = make_world(
            gauge_slo(), metrics=metrics,
            on_fire=lambda s: fired.append(s.slo.name),
            on_resolve=lambda s: resolved.append(s.slo.name),
        )
        state = evaluator.states["queue"]

        feed(registry, store, clock, 50.0)
        evaluator.evaluate()
        assert state.state == FIRING and fired == ["queue"]
        assert metrics.value("pasm_slo_status", slo="queue") == 1.0

        # One healthy evaluation is not enough (resolve_after=2)...
        feed(registry, store, clock, 0.0)
        evaluator.evaluate()
        assert state.state == FIRING and resolved == []
        # ...the second one resolves.
        feed(registry, store, clock, 0.0)
        evaluator.evaluate()
        assert state.state == OK and resolved == ["queue"]
        assert metrics.value("pasm_slo_status", slo="queue") == 0.0

        # A fresh breach fires again and counts a second page.
        feed(registry, store, clock, 50.0)
        evaluator.evaluate()
        assert state.state == FIRING
        assert state.fires == 2 and fired == ["queue", "queue"]
        assert metrics.value("pasm_slo_transitions_total",
                             slo="queue", to="firing") == 2.0

    def test_breach_during_recovery_resets_the_streak(self):
        registry, store, evaluator, clock = make_world(gauge_slo())
        state = evaluator.states["queue"]
        feed(registry, store, clock, 50.0)
        evaluator.evaluate()
        assert state.state == FIRING
        feed(registry, store, clock, 0.0)
        evaluator.evaluate()  # healthy_streak -> 1
        feed(registry, store, clock, 50.0)
        evaluator.evaluate()  # breach again: streak must reset
        assert state.healthy_streak == 0
        feed(registry, store, clock, 0.0)
        evaluator.evaluate()
        assert state.state == FIRING  # still needs two in a row

    def test_burn_gauges_and_doc_surfaces(self):
        metrics = MetricsRegistry()
        registry, store, evaluator, clock = make_world(
            gauge_slo(), metrics=metrics)
        feed(registry, store, clock, 30.0)
        evaluator.evaluate()
        assert metrics.value("pasm_slo_burn_rate",
                             slo="queue", window="fast") == 3.0
        doc = evaluator.to_doc(instance="alpha")
        assert doc["instance"] == "alpha"
        assert doc["firing"] == 1
        (alert,) = doc["alerts"]
        assert alert["slo"] == "queue" and alert["state"] == FIRING
        assert alert["burn"]["fast"] == 3.0

    def test_idle_store_fires_nothing(self):
        _, _, evaluator, _ = make_world(gauge_slo())
        assert evaluator.evaluate() == []
        assert evaluator.firing == []

    def test_rejects_duplicate_names(self):
        store = TimeseriesStore(MetricsRegistry(), clock=FakeClock())
        with pytest.raises(ValueError, match="duplicate"):
            SLOEvaluator([gauge_slo(), gauge_slo()], store)


# ---------------------------------------------------------------------------
# The default set
class TestDefaultSLOs:
    def test_standard_trio_and_optional_dedup(self):
        names = [s.name for s in default_slos()]
        assert names == ["error-ratio", "latency-p95", "queue-depth"]
        with_dedup = default_slos(dedup_min=0.5)
        assert with_dedup[-1].name == "dedup-rate"
        assert with_dedup[-1].direction == "lower"
