"""Vectorized-tier unit and seam tests.

Two concerns the four-tier differential suite
(``tests/test_lockstep_differential.py``) covers only implicitly:

* the numpy cycle formulas themselves — ``MULU``/``MULS`` data-dependent
  internal times computed over whole operand arrays must match
  :mod:`repro.m68k.timing`'s scalar model element for element;
* the vector/scalar **seam** — one regression per fallback trigger
  (mid-stream mask change, data-dependent control flow, device/non-RAM
  access, PE fail-stop inside a live batch), each asserting both that
  the fallback observably fires (queue counters) and that the schedule
  still equals the pure-event engine bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PEFailStopError
from repro.faults import FaultPlan, PEFailStop
from repro.m68k.assembler import assemble
from repro.m68k.timing import muls_cycles, mulu_cycles
from repro.machine import ExecutionMode
from repro.machine.partition import Partition
from repro.mc import EnqueueBlock, Loop, SetMask, WaitController
from repro.perf import machine_counters
from repro.programs.data import generate_matrices
from repro.programs.loader import build_matmul, run_matmul
from repro.utils.bitops import ones_count, transitions_count
from tests.engines import CFG, make_machine, result_signature

# ---------------------------------------------------------------------------
# Satellite: the numpy timing formulas vs the scalar timing model.
operand_arrays = st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=64)


@settings(deadline=None, max_examples=50)
@given(mults=operand_arrays)
def test_vectorized_mulu_cycles_match_scalar(mults):
    """``38 + 2*popcount`` over an int64 array equals
    :func:`repro.m68k.timing.mulu_cycles` element-wise — the unsigned
    multiply's data-dependent internal time, exactly as the vector
    engine computes it in ``_plan_mul``."""
    arr = np.asarray(mults, dtype=np.int64)
    vec = 38 + 2 * ones_count(arr, 16)
    assert vec.tolist() == [mulu_cycles(v) for v in mults]


@settings(deadline=None, max_examples=50)
@given(mults=operand_arrays)
def test_vectorized_muls_cycles_match_scalar(mults):
    """``38 + 2*(10/01 pattern count)`` over an array equals
    :func:`repro.m68k.timing.muls_cycles` element-wise."""
    arr = np.asarray(mults, dtype=np.int64)
    vec = 38 + 2 * transitions_count(arr, 16)
    assert vec.tolist() == [muls_cycles(v) for v in mults]


@settings(deadline=None, max_examples=50)
@given(mults=operand_arrays)
def test_bit_counting_int_array_agreement(mults):
    """The bitops primitives agree between their int and array paths
    (the scalar tier uses the former, the vector tier the latter)."""
    arr = np.asarray(mults, dtype=np.int64)
    assert ones_count(arr, 16).tolist() == [ones_count(v, 16) for v in mults]
    assert (transitions_count(arr, 16).tolist()
            == [transitions_count(v, 16) for v in mults])


# ---------------------------------------------------------------------------
# Seam regressions: one per scalar-fallback trigger.
def _run_simd(engine, plan, blocks_src, seeds, p=4):
    """Run a hand-written SIMD plan on one tier; return (signature,
    counters) so tests can assert both equality and fallback activity."""
    machine = make_machine(p, engine)
    data_programs = [
        assemble(
            f"    HALT\n    .data\n    .org $4000\nmul: .dc.w {seed}",
            predefined=CFG.device_symbols(),
        )
        for seed in seeds
    ]
    blocks = {
        name: assemble(src, predefined=CFG.device_symbols()).instruction_list()
        for name, src in blocks_src.items()
    }
    result = machine.run_simd(plan, blocks, data_programs=data_programs)
    sig = result_signature(machine, result)
    sig["d2"] = [machine.pe(lp).cpu.regs.d[2] & 0xFFFF for lp in range(p)]
    sig["d3"] = [machine.pe(lp).cpu.regs.d[3] & 0xFFFF for lp in range(p)]
    return sig, machine_counters(machine)


_INIT = "    MOVE.W  $4000,D1"
_SEEDS = [3, 0x5555, 7, 0xFFFE]


def _assert_identical_with_fallback(plan, blocks_src, *, seeds=_SEEDS,
                                    min_batches=1):
    """The vectorized tier matches pure events on this plan AND its
    fallback/batch counters show the seam was actually crossed."""
    pure, _ = _run_simd("pure-events", plan, blocks_src, seeds)
    vec, counters = _run_simd("vectorized", plan, blocks_src, seeds)
    assert vec == pure
    assert counters["vectorized_instructions"] > 0
    assert counters["vectorized_batches"] >= min_batches
    assert counters["scalar_fallbacks"] > 0
    return counters


def test_fallback_mask_change_mid_stream():
    """A mask change between broadcast blocks forces the live batch to
    flush at the seam: the narrower mask's words form a new batch, and
    the signatures still match (HALT words are the scalar fallback)."""
    blocks_src = {
        "init": _INIT,
        "wide": "    MULU    D1,D2\n    ADDQ.W  #1,D2",
        "narrow": "    MULU    D1,D2\n    LSR.W   #1,D2",
        "fini": "    HALT",
    }
    plan = [EnqueueBlock("init"),
            WaitController(), SetMask((0, 1, 2, 3)),
            Loop(3, (EnqueueBlock("wide"),)),
            WaitController(), SetMask((1, 2)),
            Loop(3, (EnqueueBlock("narrow"),)),
            WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    counters = _assert_identical_with_fallback(plan, blocks_src,
                                               min_batches=2)
    # Both mask groups vectorized: every compute word ran in a batch.
    assert counters["vectorized_instructions"] >= 12


def test_fallback_data_dependent_control_flow():
    """DIVU sits outside the compiled plan set (zero divisors trap, a
    data-dependent control-flow edge) — the word releases scalar, the
    batch splits around it, and per-PE quotients still agree."""
    blocks_src = {
        "init": _INIT,
        "b0": ("    ADDQ.W  #1,D2\n"
               "    MULU    D1,D2\n"
               "    DIVU    D1,D2\n"
               "    ADDQ.W  #3,D2"),
        "fini": "    HALT",
    }
    plan = [EnqueueBlock("init"), WaitController(), SetMask((0, 1, 2, 3)),
            Loop(3, (EnqueueBlock("b0"),)),
            WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    counters = _assert_identical_with_fallback(plan, blocks_src,
                                               min_batches=2)
    # Three DIVU words plus the HALTs released scalar.
    assert counters["scalar_fallbacks"] >= 3


def test_fallback_flag_dependent_store():
    """Scc materialises the condition codes data-dependently per PE —
    outside the compiled set, so it must split the batch scalar while
    the surrounding MULU/ADDQ words stay vectorized."""
    blocks_src = {
        "init": _INIT,
        "b0": ("    ADDQ.W  #1,D2\n"
               "    SNE     D3\n"
               "    MULU    D1,D2"),
        "fini": "    HALT",
    }
    plan = [EnqueueBlock("init"), WaitController(), SetMask((0, 1, 2, 3)),
            Loop(3, (EnqueueBlock("b0"),)),
            WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    _assert_identical_with_fallback(plan, blocks_src, min_batches=2)


def test_fallback_device_access():
    """A device read (TIMER — outside main RAM) fails the plan's
    address precheck: the access must go through the scalar bus path
    with its shared-resource interaction, never the vector batch."""
    blocks_src = {
        "init": _INIT,
        "b0": ("    ADDQ.W  #1,D2\n"
               "    MOVE.W  TIMER,D3\n"
               "    MULU    D1,D2"),
        "fini": "    HALT",
    }
    plan = [EnqueueBlock("init"), WaitController(), SetMask((0, 1, 2, 3)),
            Loop(3, (EnqueueBlock("b0"),)),
            WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    _assert_identical_with_fallback(plan, blocks_src, min_batches=2)


def test_fallback_failstop_mid_batch():
    """A PE fail-stopping while broadcast batches are in flight: the
    assassin flushes the live batch before the strike, so the victim
    dies holding its exact scalar state and every tier detects the
    fault at the same instant with the same victim set."""
    victim = Partition(CFG, 4).physical_pe(1)
    fplan = FaultPlan(failstops=(PEFailStop(victim, 20_000.0),),
                      failstop_timeout=8_000.0)
    bundle = build_matmul(ExecutionMode.SIMD, 16, 4,
                          device_symbols=CFG.device_symbols())
    a, b = generate_matrices(16)

    outcomes = []
    vec_machine = None
    for engine in ("pure-events", "vectorized"):
        machine = make_machine(4, engine, fault_plan=fplan)
        with pytest.raises(PEFailStopError) as exc_info:
            run_matmul(machine, bundle, a, b)
        outcomes.append((exc_info.value.pes, exc_info.value.detected_at))
        if engine == "vectorized":
            vec_machine = machine
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == (victim,)
    # The strike genuinely landed in vectorized territory: batches had
    # formed before the fault aborted the run.
    counters = machine_counters(vec_machine)
    assert counters["vectorized_batches"] > 0
    assert counters["vectorized_instructions"] > 0


# ---------------------------------------------------------------------------
# Hypothesis seam stress: random programs straddling the seam.
_VEC_VOCAB = (
    "    ADDQ.W  #1,D2",
    "    MULU    D1,D2",
    "    MULS    D1,D3",
    "    ADD.W   D3,D2",
    "    LSR.W   #2,D2",
)
_FALLBACK_VOCAB = (
    "    SNE     D3",
    "    MOVE.W  TIMER,D3",
)


@settings(deadline=None, max_examples=8)
@given(data=st.data())
def test_random_seam_programs_identical(data):
    """Random interleavings of vectorizable and fallback instructions,
    random masks per block, random loop trips: however the stream
    fractures into batches and scalar words, the vectorized schedule
    equals the pure-event schedule signature for signature."""
    n_blocks = data.draw(st.integers(1, 3), label="n_blocks")
    blocks_src = {"init": _INIT}
    plan = [EnqueueBlock("init")]
    for i in range(n_blocks):
        body = data.draw(
            st.lists(st.sampled_from(_VEC_VOCAB + _FALLBACK_VOCAB),
                     min_size=1, max_size=4),
            label=f"body{i}",
        )
        blocks_src[f"b{i}"] = "\n".join(body)
        mask = data.draw(st.sets(st.integers(0, 3), min_size=1, max_size=4),
                         label=f"mask{i}")
        trips = data.draw(st.integers(1, 4), label=f"trips{i}")
        plan += [WaitController(), SetMask(tuple(sorted(mask))),
                 Loop(trips, (EnqueueBlock(f"b{i}"),))]
    blocks_src["fini"] = "    HALT"
    plan += [WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    seeds = [data.draw(st.integers(0, 0xFFFF), label=f"seed{lp}")
             for lp in range(4)]

    pure, _ = _run_simd("pure-events", plan, blocks_src, seeds)
    vec, _ = _run_simd("vectorized", plan, blocks_src, seeds)
    assert vec == pure
