"""Tests for the Memory Storage System and double-buffered PE memories."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.m68k.assembler import assemble
from repro.machine import PASMMachine, PrototypeConfig
from repro.mss import FrameRequest, MemoryStorageSystem
from repro.sim import AllOf

CFG = PrototypeConfig()


def frame(lp, addr, values):
    return FrameRequest(lp, addr, np.asarray(values, dtype=np.uint16))


class TestFrameLoads:
    def test_load_lands_in_spare_not_active(self):
        machine = PASMMachine(CFG, partition_size=4)
        mss = MemoryStorageSystem(machine)
        machine.pe(0).memory.write(0x4000, 0xAAAA, 2)
        done = mss.load_into_spares([frame(0, 0x4000, [0x1234])])
        machine.env.run(until=done)
        assert machine.pe(0).memory.read(0x4000, 2) == 0xAAAA  # untouched
        assert mss.spare(0).read(0x4000, 2) == 0x1234

    def test_swap_exposes_loaded_data(self):
        machine = PASMMachine(CFG, partition_size=4)
        mss = MemoryStorageSystem(machine)
        done = mss.load_into_spares([frame(2, 0x100, [7, 8, 9])])
        machine.env.run(until=done)
        mss.swap_bank(2)
        assert machine.pe(2).memory.read_words(0x100, 3).tolist() == [7, 8, 9]
        # Swapping back restores the original bank.
        mss.swap_bank(2)
        assert mss.spare(2).read_words(0x100, 3).tolist() == [7, 8, 9]
        assert mss.swaps == 2

    def test_units_run_in_parallel_pes_sequentially(self):
        """PEs of one group serialize on their unit; groups overlap."""
        machine = PASMMachine(CFG, partition_size=8)  # 2 MC groups
        mss = MemoryStorageSystem(machine, seek_cycles=100,
                                  cycles_per_word=1)
        words = [0] * 50
        # two PEs in group 0 (logical 0,1) and two in group 1 (logical 4,5)
        done = mss.load_into_spares(
            [frame(0, 0, words), frame(1, 0, words),
             frame(4, 0, words), frame(5, 0, words)]
        )
        t = machine.env.run(until=done)
        # Each unit: 2 sequential transfers of (100 + 50); parallel groups.
        assert t == pytest.approx(2 * 150)

    def test_transfer_time_scales_with_words(self):
        machine = PASMMachine(CFG, partition_size=4)
        mss = MemoryStorageSystem(machine, seek_cycles=10, cycles_per_word=3)
        done = mss.load_into_spares([frame(0, 0, [1] * 20)])
        t = machine.env.run(until=done)
        assert t == pytest.approx(10 + 3 * 20)
        assert mss.units[0].words_transferred == 20

    def test_unknown_pe_rejected(self):
        machine = PASMMachine(CFG, partition_size=4)
        mss = MemoryStorageSystem(machine)
        with pytest.raises(ConfigurationError):
            mss.load_into_spares([frame(9, 0, [1])])


class TestDoubleBufferedPipeline:
    def test_io_overlaps_compute(self):
        """The design point: loading batch k+1 while computing batch k
        costs max(io, compute), not their sum."""
        machine = PASMMachine(CFG, partition_size=4)
        mss = MemoryStorageSystem(machine, seek_cycles=500,
                                  cycles_per_word=2)
        env = machine.env

        # A compute program: sum 64 words from 0x4000 into $6000.
        program = assemble(
            """
            LEA     $4000,A0
            MOVEQ   #0,D0
            MOVE.W  #63,D2
    loop:   ADD.W   (A0)+,D0
            DBRA    D2,loop
            MOVE.W  D0,$6000
            HALT
            """
        )
        batch0 = np.arange(64, dtype=np.uint16)
        batch1 = np.arange(64, 128, dtype=np.uint16)
        for lp in range(4):
            machine.pe(lp).memory.write_words(0x4000, batch0)

        # Arm compute on batch 0 and the load of batch 1 simultaneously.
        io_done = mss.load_into_spares(
            [frame(lp, 0x4000, batch1) for lp in range(4)]
        )
        compute_done = machine.start_mimd([program] * 4)
        env.run(until=AllOf(env, [io_done, compute_done]))
        overlap_time = env.now

        compute_time = max(
            sum(machine.pe(lp).cpu.category_cycles.values())
            for lp in range(4)
        )
        io_time = 4 * (500 + 2 * 64)  # 4 PEs sequential on one unit
        assert overlap_time == pytest.approx(max(compute_time, io_time),
                                             rel=0.01)
        assert overlap_time < compute_time + io_time

        # Verify batch 0's result, then swap and verify batch 1 is ready.
        assert machine.pe(0).memory.read(0x6000, 2) == int(batch0.sum())
        mss.swap_all()
        got = machine.pe(0).memory.read_words(0x4000, 64)
        assert np.array_equal(got, batch1)
