"""Tests for the experiment harness: every exhibit regenerates and shows
the paper's qualitative shape."""

import io

import pytest

from repro.core import DecouplingStudy
from repro.experiments import (
    run_breakdown_figure,
    run_fig6,
    run_fig7,
    run_fig11,
    run_fig12,
    run_table1,
)
from repro.experiments.runner import EXPERIMENTS, run_experiments


@pytest.fixture(scope="module")
def study():
    return DecouplingStudy()


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1()

    def test_simd_beats_mimd_for_both_instruction_types(self, table1):
        for row in table1.rows:
            label, simd, mimd, ratio = row
            assert simd > mimd, label
            assert ratio > 1

    def test_register_ops_near_theoretical_peak(self, table1):
        # 16 PEs at 8 MHz, 4-cycle ADD from the queue: near 32 MIPS.
        label, simd, mimd, _ = table1.rows[0]
        assert 28 <= simd <= 32

    def test_fetch_advantage_larger_for_register_ops(self, table1):
        assert table1.rows[0][3] > table1.rows[1][3]

    def test_render(self, table1):
        text = table1.render()
        assert "SIMD MIPS" in text and "table1" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6()

    def test_mode_ordering_everywhere(self, fig6):
        for n, sisd, simd, smimd, mimd in fig6.rows:
            assert simd < smimd < mimd, f"n={n}"
            if n >= 16:
                # At n=8 on 8 PEs each PE holds one column and the run is
                # all communication; polled MIMD can lose to serial there.
                assert mimd < sisd, f"n={n}"

    def test_parallel_speedup_approaches_p(self, fig6):
        n, sisd, simd, smimd, mimd = fig6.rows[-1]
        assert n == 256
        assert sisd / simd > 8  # superlinear vs p=8
        assert 7 < sisd / smimd < 8

    def test_mimd_over_smimd_ratio_decreases(self, fig6):
        ratios = [mimd / smimd for _, _, _, smimd, mimd in fig6.rows]
        assert all(b < a for a, b in zip(ratios, ratios[1:]))

    def test_times_grow_with_n(self, fig6):
        for col in range(1, 5):
            vals = [row[col] for row in fig6.rows]
            assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_csv(self, fig6):
        csv = fig6.to_csv()
        assert csv.startswith("n,")
        assert len(csv.strip().splitlines()) == len(fig6.rows) + 1


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self, study):
        return run_fig7(study)

    def test_crossover_in_paper_band(self, fig7):
        assert "crossover at 1" in fig7.we_measure
        value = float(fig7.we_measure.split("at ")[1].split(" ")[0])
        assert 12 <= value <= 16

    def test_simd_faster_at_zero_added(self, fig7):
        m, simd, smimd, faster = fig7.rows[0]
        assert m == 0 and faster == "SIMD"

    def test_smimd_faster_at_end(self, fig7):
        assert fig7.rows[-1][3] == "S/MIMD"

    def test_monotone_gap_closure(self, fig7):
        gaps = [smimd - simd for _, simd, smimd, _ in fig7.rows]
        assert all(b < a for a, b in zip(gaps, gaps[1:]))


class TestBreakdowns:
    def test_fig8_smimd_mult_larger(self, study):
        fig8 = run_breakdown_figure("fig8", study)
        for row in fig8.rows:
            n, s_mult, _, _, h_mult, _, _ = row
            assert h_mult > s_mult, f"n={n}"

    def test_fig9_mult_crosses_at_crossover(self, study):
        fig9 = run_breakdown_figure("fig9", study)
        big = fig9.rows[-1]
        assert big[4] < big[1]  # S/MIMD mult smaller ...
        assert big[5] > big[2]  # ... offset by larger comm

    def test_fig10_smimd_wins_at_large_n(self, study):
        fig10 = run_breakdown_figure("fig10", study)
        n, s_mult, s_comm, s_rest, h_mult, h_comm, h_rest = fig10.rows[-1]
        assert (h_mult + h_comm + h_rest) < (s_mult + s_comm + s_rest)

    def test_mult_outgrows_comm(self, study):
        fig8 = run_breakdown_figure("fig8", study)
        ratios = [row[1] / row[2] for row in fig8.rows]  # SIMD mult/comm
        assert all(b > a for a, b in zip(ratios, ratios[1:]))

    def test_unknown_figure_rejected(self, study):
        with pytest.raises(ValueError):
            run_breakdown_figure("fig99", study)


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11(self, study):
        return run_fig11(study)

    def test_efficiency_rises_with_n(self, fig11):
        for col in (1, 2, 3):
            vals = [row[col] for row in fig11.rows]
            assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_simd_superlinear_at_large_n(self, fig11):
        assert fig11.rows[-1][1] > 1.0

    def test_async_modes_below_unity(self, fig11):
        for row in fig11.rows:
            assert row[2] < 1.0 and row[3] < 1.0

    def test_paper_endpoints(self, fig11):
        """S/MIMD ≈ 96%, MIMD ≈ 87% at n=256 (the paper's best points)."""
        n, simd, smimd, mimd = fig11.rows[-1]
        assert n == 256
        assert smimd == pytest.approx(0.96, abs=0.015)
        assert mimd == pytest.approx(0.87, abs=0.015)

    def test_mode_ordering(self, fig11):
        for _, simd, smimd, mimd in fig11.rows:
            assert simd > smimd > mimd


class TestFig12:
    @pytest.fixture(scope="class")
    def fig12(self, study):
        return run_fig12(study)

    def test_efficiency_drops_with_p(self, fig12):
        for col in (1, 2, 3):
            vals = [row[col] for row in fig12.rows]
            assert all(b < a for a, b in zip(vals, vals[1:]))

    def test_processor_counts(self, fig12):
        assert [row[0] for row in fig12.rows] == [4, 8, 16]


class TestRunner:
    def test_registry_covers_all_exhibits(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "ext-dma", "ext-scale", "ext-muls",
            "ext-superlinear", "ext-faults",
        }

    def test_subset_run_and_files(self, tmp_path):
        stream = io.StringIO()
        results = run_experiments(
            ["fig12"], out_dir=tmp_path, stream=stream
        )
        assert len(results) == 1
        assert (tmp_path / "fig12.txt").exists()
        assert (tmp_path / "fig12.csv").exists()
        assert "fig12" in stream.getvalue()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiments(["fig99"], stream=io.StringIO())
