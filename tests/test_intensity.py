"""Tests for the intensity-transform workload: correctness in every mode
and the communication-free view of the decoupling tradeoff."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs.intensity import (
    IntensityBundle,
    build_intensity,
    reference_transform,
    run_intensity,
)
from repro.utils.rng import make_rng

CFG = PrototypeConfig()


def run_mode(mode, pixels, p=4):
    per_pe = pixels.shape[1]
    machine = PASMMachine(CFG, partition_size=p if mode.is_parallel else 1)
    bundle = build_intensity(mode, per_pe, p)
    return run_intensity(machine, bundle, pixels)


@pytest.fixture(scope="module")
def pixels():
    rng = make_rng(3, "intensity")
    return rng.integers(0, 1 << 16, size=(4, 32), dtype=np.uint16)


@pytest.mark.parametrize(
    "mode", [ExecutionMode.SIMD, ExecutionMode.MIMD, ExecutionMode.SMIMD]
)
def test_transform_correct(mode, pixels):
    _, out = run_mode(mode, pixels)
    assert np.array_equal(out, reference_transform(pixels))


def test_serial_correct(pixels):
    strip = pixels[:1]
    _, out = run_mode(ExecutionMode.SERIAL, strip, p=1)
    assert np.array_equal(out, reference_transform(strip))


def test_one_slow_pe_costs_simd_like_all_slow(pixels):
    """Max-coupling: one worst-case strip drags every SIMD broadcast to
    worst-case speed, the paper's T_SIMD = Σ max."""
    one_slow = pixels.copy()
    one_slow[2, :] = 0xFFFF
    all_slow = np.full_like(pixels, 0xFFFF)
    r_one, _ = run_mode(ExecutionMode.SIMD, one_slow)
    r_all, _ = run_mode(ExecutionMode.SIMD, all_slow)
    assert r_one.cycles == pytest.approx(r_all.cycles, rel=0.01)


def test_simd_sensitive_to_distribution_mimd_is_not(pixels):
    """Shuffle the same pixel multiset differently across PEs: SIMD's
    per-broadcast max rises, while MIMD's per-PE sums (and thus its
    critical path) are unchanged — Equations (1) vs (2) in the flesh."""
    row = pixels[0]
    same = np.tile(row, (4, 1))
    mixed = np.stack([np.roll(row, 7 * k) for k in range(4)])
    simd_same, _ = run_mode(ExecutionMode.SIMD, same)
    simd_mixed, _ = run_mode(ExecutionMode.SIMD, mixed)
    mimd_same, _ = run_mode(ExecutionMode.MIMD, same)
    mimd_mixed, _ = run_mode(ExecutionMode.MIMD, mixed)
    assert simd_mixed.cycles > simd_same.cycles
    assert mimd_mixed.cycles == pytest.approx(mimd_same.cycles, rel=0.002)


def test_decoupling_without_communication(pixels):
    """With zero communication, SIMD's fixed advantages (queue fetch +
    hidden loop control) beat the asynchronous modes at one multiply per
    pixel — the m=0 end of Figure 7, isolated."""
    simd, _ = run_mode(ExecutionMode.SIMD, pixels)
    mimd, _ = run_mode(ExecutionMode.MIMD, pixels)
    assert simd.cycles < mimd.cycles


def test_identical_data_removes_max_penalty():
    """When every PE holds the same pixels, SIMD max-coupling costs
    nothing: per-broadcast max equals each PE's own time."""
    rng = make_rng(4, "identical")
    row = rng.integers(0, 1 << 16, size=32, dtype=np.uint16)
    same = np.tile(row, (4, 1))
    mixed = np.stack([np.roll(row, k) for k in range(4)])  # same multiset
    simd_same, _ = run_mode(ExecutionMode.SIMD, same)
    simd_mixed, _ = run_mode(ExecutionMode.SIMD, mixed)
    assert simd_same.cycles <= simd_mixed.cycles


def test_mult_category_dominates(pixels):
    result, _ = run_mode(ExecutionMode.SIMD, pixels)
    breakdown = result.breakdown()
    assert breakdown["mult"] > 0.8 * result.cycles


class TestValidation:
    def test_zero_pixels_rejected(self):
        with pytest.raises(ConfigurationError):
            build_intensity(ExecutionMode.SIMD, 0)

    def test_shape_mismatch_rejected(self, pixels):
        machine = PASMMachine(CFG, partition_size=4)
        bundle = build_intensity(ExecutionMode.MIMD, 8, 4)
        with pytest.raises(ConfigurationError, match="shape"):
            run_intensity(machine, bundle, pixels)

    def test_partition_mismatch_rejected(self):
        machine = PASMMachine(CFG, partition_size=8)
        bundle = build_intensity(ExecutionMode.MIMD, 4, 4)
        with pytest.raises(ConfigurationError, match="partition"):
            run_intensity(
                machine, bundle,
                np.zeros((4, 4), dtype=np.uint16),
            )

    def test_bundle_is_frozen(self):
        bundle = build_intensity(ExecutionMode.MIMD, 4, 4)
        with pytest.raises(AttributeError):
            bundle.p = 8
