"""Unit tests for the discrete-event kernel (repro.sim)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Gate, Rendezvous, Store


def test_timeout_advances_time():
    env = Environment()

    def proc():
        yield env.timeout(10)
        assert env.now == 10
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 12.5
    assert env.now == 12.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_value_delivery():
    env = Environment()

    def proc():
        got = yield env.timeout(1, value="hello")
        return got

    p = env.process(proc())
    env.run()
    assert p.value == "hello"


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(7)
        return 42

    def parent():
        result = yield env.process(child())
        return result, env.now

    p = env.process(parent())
    env.run()
    assert p.value == (42, 7)


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("b", 5))
    env.process(worker("a", 3))
    env.process(worker("c", 9))
    env.run()
    assert log == [(3, "a"), (5, "b"), (9, "c")]


def test_event_succeed_resumes_waiter():
    env = Environment()
    ev = env.event()
    out = []

    def waiter():
        val = yield ev
        out.append((env.now, val))

    def trigger():
        yield env.timeout(4)
        ev.succeed("ok")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert out == [(4, "ok")]


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_yield_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("v")
    env.run()  # process the event so callbacks is None

    def proc():
        val = yield ev
        return val

    p = env.process(proc())
    env.run()
    assert p.value == "v"


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            return str(exc)

    def trigger():
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    env.run()
    assert p.value == "boom"


def test_unwatched_process_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("exploded")

    env.process(bad())
    with pytest.raises(ValueError, match="exploded"):
        env.run()


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_run_until_timeout_event_advances_time():
    """A Timeout carries its value from creation but *occurs* at its
    scheduled time; run(until=timeout) must wait for the occurrence."""
    env = Environment()
    env.run(until=env.timeout(2000))
    assert env.now == 2000


def test_run_until_time_stops_early():
    env = Environment()
    log = []

    def proc():
        for _ in range(10):
            yield env.timeout(10)
            log.append(env.now)

    env.process(proc())
    env.run(until=35)
    assert log == [10, 20, 30]
    assert env.now == 35


def test_deadlock_detection():
    env = Environment()
    ev = env.event()

    def waiter():
        yield ev

    p = env.process(waiter())
    with pytest.raises(DeadlockError):
        env.run(until=p)


def test_yielding_non_event_is_error():
    env = Environment()

    def proc():
        yield 17

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_allof_collects_values():
    env = Environment()

    def proc():
        vals = yield AllOf(env, [env.timeout(5, "a"), env.timeout(2, "b")])
        return vals, env.now

    p = env.process(proc())
    env.run()
    assert p.value == (["a", "b"], 5)


def test_anyof_returns_first():
    env = Environment()

    def proc():
        val = yield AnyOf(env, [env.timeout(5, "slow"), env.timeout(2, "fast")])
        return val, env.now

    p = env.process(proc())
    env.run()
    assert p.value == ("fast", 2)


def test_allof_empty_is_immediate():
    env = Environment()

    def proc():
        vals = yield AllOf(env, [])
        return vals

    p = env.process(proc())
    env.run()
    assert p.value == []


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("x")
            t0 = env.now
            yield store.put("y")  # must wait for consumer
            times.append((t0, env.now))

        def consumer():
            yield env.timeout(10)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [(0, 10)]

    def test_getter_blocks_until_item(self):
        env = Environment()
        store = Store(env)
        out = []

        def consumer():
            item = yield store.get()
            out.append((env.now, item))

        def producer():
            yield env.timeout(6)
            yield store.put("z")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert out == [(6, "z")]

    def test_try_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        assert store.try_put(1) is True
        env.run()
        assert store.try_put(2) is False
        assert list(store.items) == [1]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestGate:
    def test_wait_blocks_until_open(self):
        env = Environment()
        gate = Gate(env)
        out = []

        def waiter():
            yield gate.wait()
            out.append(env.now)

        def opener():
            yield env.timeout(8)
            gate.open()

        env.process(waiter())
        env.process(opener())
        env.run()
        assert out == [8]

    def test_open_gate_passes_immediately(self):
        env = Environment()
        gate = Gate(env, is_open=True)

        def waiter():
            yield gate.wait()
            return env.now

        p = env.process(waiter())
        env.run()
        assert p.value == 0

    def test_close_reblocks(self):
        env = Environment()
        gate = Gate(env, is_open=True)
        gate.close()
        assert not gate.is_open


class TestRendezvous:
    def test_barrier_releases_all_at_last_arrival(self):
        env = Environment()
        bar = Rendezvous(env, parties=3)
        releases = []

        def party(delay):
            yield env.timeout(delay)
            gen = yield bar.arrive()
            releases.append((env.now, gen))

        for d in (1, 5, 9):
            env.process(party(d))
        env.run()
        assert releases == [(9, 0), (9, 0), (9, 0)]

    def test_auto_reset_generations(self):
        env = Environment()
        bar = Rendezvous(env, parties=2)
        gens = []

        def party():
            for _ in range(3):
                gen = yield bar.arrive()
                gens.append(gen)
                yield env.timeout(1)

        env.process(party())
        env.process(party())
        env.run()
        assert sorted(gens) == [0, 0, 1, 1, 2, 2]

    def test_single_party_never_blocks(self):
        env = Environment()
        bar = Rendezvous(env, parties=1)

        def party():
            yield bar.arrive()
            return env.now

        p = env.process(party())
        env.run()
        assert p.value == 0

    def test_invalid_parties(self):
        env = Environment()
        with pytest.raises(ValueError):
            Rendezvous(env, parties=0)

    def test_cannot_shrink_below_arrived(self):
        env = Environment()
        bar = Rendezvous(env, parties=3)

        def party():
            yield bar.arrive()

        env.process(party())
        env.process(party())
        env.run(until=1)
        with pytest.raises(SimulationError):
            bar.parties = 2
