"""Tests for the execution engine: specs, scheduling, recovery, stats.

The determinism test required by the engine's contract is here: the same
batch of job specs run at ``--jobs 1`` and ``--jobs 4`` must produce
byte-identical serialized results.
"""

import io
import json

import pytest

from repro.core import DecouplingStudy
from repro.errors import ConfigurationError, ExecError
from repro.exec import (
    ExecutionEngine,
    ResultCache,
    SimJobSpec,
    canonical_json,
    execute_job,
    matmul_spec,
    mips_spec,
    resolve_jobs,
)
from repro.experiments.runner import run_experiments
from repro.machine import ExecutionMode, PrototypeConfig

PARALLEL_MODES = (ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD)

#: A small macro batch: cheap to compute, covers all modes and a spread
#: of (n, p, m) cells.
MACRO_SPECS = (
    [matmul_spec(mode, n, 4, engine="macro")
     for mode in PARALLEL_MODES for n in (16, 64)]
    + [matmul_spec(ExecutionMode.SERIAL, 64, 1, engine="macro"),
       matmul_spec(ExecutionMode.SIMD, 64, 4, added_multiplies=7,
                   engine="macro")]
)


def _test_spec(**params):
    return SimJobSpec(
        program="_test", mode="serial", n=1, p=1, engine="macro",
        params=tuple(params.items()),
    )


class TestSimJobSpec:
    def test_content_hash_is_stable_and_distinct(self):
        a = matmul_spec(ExecutionMode.SIMD, 64, 4)
        b = matmul_spec(ExecutionMode.SIMD, 64, 4)
        c = matmul_spec(ExecutionMode.SIMD, 64, 4, added_multiplies=1)
        assert a.content_hash == b.content_hash
        assert a.content_hash != c.content_hash
        assert len(a.content_hash) == 64  # sha256 hex

    def test_hash_covers_config_seed_and_bmax(self):
        base = matmul_spec(ExecutionMode.SIMD, 64, 4)
        other_cfg = matmul_spec(
            ExecutionMode.SIMD, 64, 4,
            config=PrototypeConfig.calibrated().with_overrides(ws_main=2),
        )
        other_seed = matmul_spec(ExecutionMode.SIMD, 64, 4, seed=1)
        other_bmax = matmul_spec(ExecutionMode.SIMD, 64, 4, b_max=16)
        hashes = {base.content_hash, other_cfg.content_hash,
                  other_seed.content_hash, other_bmax.content_hash}
        assert len(hashes) == 4

    def test_params_order_does_not_change_hash(self):
        a = SimJobSpec(program="_test", mode="serial", n=1, p=1,
                       params=(("x", 1), ("y", 2)))
        b = SimJobSpec(program="_test", mode="serial", n=1, p=1,
                       params=(("y", 2), ("x", 1)))
        assert a.content_hash == b.content_hash

    def test_round_trip_through_dict(self):
        spec = matmul_spec(ExecutionMode.MIMD, 32, 8, added_multiplies=3,
                           engine="micro", seed=7, b_max=64)
        clone = SimJobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash == spec.content_hash

    def test_from_dict_accepts_params_as_pairs(self):
        # Tuples round-trip through JSON as lists, so a client that
        # serialises the params field directly posts pairs, not a dict.
        spec = SimJobSpec(program="_test", mode="serial", n=1, p=1,
                          params=(("x", 1), ("y", 2)))
        as_dict = spec.to_dict()
        as_pairs = dict(as_dict, params=[["y", 2], ["x", 1]])
        clone = SimJobSpec.from_dict(as_pairs)
        assert clone == spec
        assert clone.content_hash == spec.content_hash
        with pytest.raises((TypeError, ValueError)):
            SimJobSpec.from_dict(dict(as_dict, params=[["x", 1, "extra"]]))

    def test_job_seed_derived_from_hash(self):
        a = matmul_spec(ExecutionMode.SIMD, 64, 4)
        b = matmul_spec(ExecutionMode.SIMD, 64, 4, added_multiplies=1)
        assert a.job_seed == matmul_spec(ExecutionMode.SIMD, 64, 4).job_seed
        assert a.job_seed != b.job_seed
        assert 0 <= a.job_seed < 2 ** 63

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimJobSpec(program="matmul", mode="vliw", n=4, p=1)
        with pytest.raises(ConfigurationError):
            SimJobSpec(program="matmul", mode="simd", n=4, p=1, engine="auto")
        with pytest.raises(ConfigurationError):
            SimJobSpec(program="matmul", mode="simd", n=0, p=1)

    def test_label_mentions_identity(self):
        label = matmul_spec(ExecutionMode.SIMD, 64, 4).label()
        assert "matmul" in label and "n=64" in label and "p=4" in label


class TestSerialEngine:
    def test_payload_matches_study(self):
        spec = matmul_spec(ExecutionMode.SIMD, 64, 4, engine="macro")
        payload = ExecutionEngine(jobs=1).run([spec])[0]
        res = DecouplingStudy().run(ExecutionMode.SIMD, 64, 4,
                                    engine="macro")
        assert payload["cycles"] == res.cycles
        assert payload["breakdown"] == res.breakdown
        assert payload["engine"] == "macro" and payload["verified"] is False

    def test_micro_payload_is_verified(self):
        spec = matmul_spec(ExecutionMode.SIMD, 8, 4, engine="micro")
        payload = ExecutionEngine(jobs=1).run([spec])[0]
        assert payload["verified"] is True and payload["engine"] == "micro"

    def test_payloads_are_json_safe(self):
        payloads = ExecutionEngine(jobs=1).run(MACRO_SPECS[:3])
        json.dumps(payloads)  # would raise on numpy scalars

    def test_unknown_program_raises_structured_error(self):
        spec = SimJobSpec(program="raytrace", mode="simd", n=4, p=4)
        with pytest.raises(ExecError) as err:
            execute_job(spec)
        assert err.value.job["program"] == "raytrace"

    def test_serial_engine_is_lazy_pooled_is_eager(self, tmp_path):
        assert not ExecutionEngine(jobs=1).eager
        assert ExecutionEngine(jobs=2).eager
        cache = ResultCache(tmp_path, version="v")
        assert ExecutionEngine(jobs=1, cache=cache).eager


class TestPooledExecution:
    def test_jobs1_and_jobs4_byte_identical(self):
        """The determinism contract: pooling changes nothing, byte for byte."""
        serial = ExecutionEngine(jobs=1).run(MACRO_SPECS)
        pooled = ExecutionEngine(jobs=4).run(MACRO_SPECS)
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))

    def test_result_order_follows_spec_order(self):
        specs = [_test_spec(action="echo", value=i) for i in range(12)]
        payloads = ExecutionEngine(jobs=3).run(specs)
        assert [p["value"] for p in payloads] == list(range(12))

    def test_worker_crash_resubmitted_once(self, tmp_path):
        sentinel = tmp_path / "first-attempt"
        spec = _test_spec(action="flaky", sentinel=str(sentinel))
        engine = ExecutionEngine(jobs=2)
        payload = engine.run([spec])[0]
        assert payload == {"value": "recovered"}
        assert sentinel.exists()
        assert engine.stats.computed == 1

    def test_persistent_crash_surfaces_exec_error(self):
        spec = _test_spec(action="crash")
        with pytest.raises(ExecError) as err:
            ExecutionEngine(jobs=2).run([spec])
        assert err.value.attempts == 2
        assert err.value.job["program"] == "_test"
        assert err.value.cause is not None

    def test_crash_does_not_poison_siblings(self, tmp_path):
        sentinel = tmp_path / "flaky-sibling"
        specs = [_test_spec(action="echo", value="a"),
                 _test_spec(action="flaky", sentinel=str(sentinel)),
                 _test_spec(action="echo", value="b")]
        payloads = ExecutionEngine(jobs=2).run(specs)
        assert payloads[0]["value"] == "a"
        assert payloads[1]["value"] == "recovered"
        assert payloads[2]["value"] == "b"


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        import os
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.delenv("REPRO_JOBS")
        # Unset, the default is one job per available core.
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert resolve_jobs(None) == 1

    def test_auto_means_all_cores(self):
        import os
        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)
        with pytest.raises(ConfigurationError):
            resolve_jobs("many")

    def test_env_non_integer_raises_exec_error_naming_variable(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(ExecError, match="REPRO_JOBS"):
            resolve_jobs(None)
        with pytest.raises(ExecError, match="not an integer"):
            resolve_jobs(None)

    def test_env_below_one_raises_exec_error_naming_variable(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.raises(ExecError, match="REPRO_JOBS"):
            resolve_jobs(None)
        with pytest.raises(ExecError, match=">= 1"):
            resolve_jobs(None)

    def test_env_error_is_not_a_bare_value_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2.5")
        with pytest.raises(ExecError) as err:
            resolve_jobs(None)
        assert not isinstance(err.value, ValueError)
        assert "2.5" in str(err.value)

    def test_explicit_arg_still_wins_over_bad_env(self, monkeypatch):
        # A bad $REPRO_JOBS must not break callers that pass --jobs.
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert resolve_jobs(3) == 3

    def test_cli_reports_bad_env_cleanly(self, monkeypatch, capsys):
        from repro.experiments.runner import main
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(SystemExit) as err:
            main(["fig12"])
        assert err.value.code == 2  # argparse error, not a traceback
        assert "REPRO_JOBS" in capsys.readouterr().err


class TestCacheAndStats:
    def test_cold_then_warm(self, tmp_path):
        specs = MACRO_SPECS[:5]
        cold = ExecutionEngine(jobs=1,
                               cache=ResultCache(tmp_path, version="v1"))
        first = cold.run(specs)
        assert cold.stats.computed == 5 and cold.stats.cache_hits == 0
        warm = ExecutionEngine(jobs=1,
                               cache=ResultCache(tmp_path, version="v1"))
        second = warm.run(specs)
        assert warm.stats.computed == 0 and warm.stats.cache_hits == 5
        assert warm.stats.jobs == len(specs)  # hit count == job count
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_summary_table_shape(self, tmp_path):
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(tmp_path, version="v1"))
        engine.run(MACRO_SPECS[:2])
        table = engine.stats.summary_table()
        assert "matmul/macro" in table and "TOTAL" in table
        assert "cache hits" in table and "wall (s)" in table

    def test_stats_shared_across_engines(self, tmp_path):
        from repro.exec import ExecStats
        stats = ExecStats()
        ExecutionEngine(jobs=1, stats=stats).run(MACRO_SPECS[:1])
        ExecutionEngine(jobs=1, stats=stats).run(MACRO_SPECS[1:2])
        assert stats.jobs == 2


class TestStudyIntegration:
    def test_pooled_study_matches_plain_study(self):
        plain = DecouplingStudy()
        pooled = DecouplingStudy(exec_engine=ExecutionEngine(jobs=2))
        for mode in PARALLEL_MODES:
            a = plain.run(mode, 64, 4, engine="macro")
            b = pooled.run(mode, 64, 4, engine="macro")
            assert a == b

    def test_prefetch_noop_on_lazy_engine(self):
        study = DecouplingStudy()
        assert study.prefetch([(ExecutionMode.SIMD, 64, 4)]) == 0
        assert study._cache == {}

    def test_prefetch_fills_memo_on_eager_engine(self, tmp_path):
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(tmp_path, version="v1"))
        study = DecouplingStudy(exec_engine=engine)
        cells = [(mode, 64, 4, 0, "macro") for mode in PARALLEL_MODES]
        assert study.prefetch(cells) == 3
        assert engine.stats.computed == 3
        # The subsequent runs are memo hits: no new engine traffic.
        study.run(ExecutionMode.SIMD, 64, 4, engine="macro")
        assert engine.stats.jobs == 3

    def test_prefetch_dedupes_and_resolves_auto(self, tmp_path):
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(tmp_path, version="v1"))
        study = DecouplingStudy(exec_engine=engine)
        submitted = study.prefetch([
            (ExecutionMode.SIMD, 64, 4),            # auto -> macro
            (ExecutionMode.SIMD, 64, 4, 0, "macro"),  # duplicate
            (ExecutionMode.SIMD, 64, 4, 1),
        ])
        assert submitted == 2

    def test_prefetch_rejects_bad_serial_cell(self, tmp_path):
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(tmp_path, version="v1"))
        study = DecouplingStudy(exec_engine=engine)
        with pytest.raises(ConfigurationError):
            study.prefetch([(ExecutionMode.SERIAL, 64, 4)])


class TestRunnerIntegration:
    def test_pooled_cached_run_identical_to_default(self, tmp_path):
        base = io.StringIO()
        run_experiments(["fig12"], stream=base)
        pooled = io.StringIO()
        run_experiments(["fig12"], stream=pooled, jobs=2,
                        cache=ResultCache(tmp_path, version="v1"))
        assert base.getvalue() == pooled.getvalue()

    def test_warm_rerun_hits_for_every_job(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        out = io.StringIO()
        run_experiments(["fig12", "ext-muls"], stream=out, cache=cache,
                        stats=True)
        assert "execution engine stats" in out.getvalue()
        warm = io.StringIO()
        run_experiments(["fig12", "ext-muls"], stream=warm,
                        cache=ResultCache(tmp_path, version="v1"), stats=True)
        stats_text = warm.getvalue()
        # Every job the warm run touched was a cache hit.
        total = [line for line in stats_text.splitlines()
                 if line.strip().startswith("TOTAL")][0]
        cells = [c.strip() for c in total.split("|")]
        jobs, computed, hits = int(cells[1]), int(cells[2]), int(cells[3])
        assert computed == 0 and hits == jobs and jobs > 0

    def test_cli_flags(self, tmp_path, capsys):
        from repro.experiments.runner import main
        out_dir = tmp_path / "out"
        code = main(["fig12", "--jobs", "2", "--stats",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "fig12.json").exists()
        captured = capsys.readouterr().out
        assert "execution engine stats" in captured
        assert (tmp_path / "cache").exists()

    def test_cli_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.runner import main
        monkeypatch.chdir(tmp_path)
        assert main(["ext-muls", "--no-cache"]) == 0
        assert not (tmp_path / ".repro_cache").exists()


def test_table1_identical_through_pool(tmp_path):
    from repro.experiments.table1 import run_table1
    base = run_table1()
    pooled = run_table1(
        exec_engine=ExecutionEngine(
            jobs=2, cache=ResultCache(tmp_path, version="v1"))
    )
    assert base.to_json() == pooled.to_json()
    warm_engine = ExecutionEngine(jobs=2,
                                  cache=ResultCache(tmp_path, version="v1"))
    warm = run_table1(exec_engine=warm_engine)
    assert warm.to_json() == base.to_json()
    assert warm_engine.stats.computed == 0
    assert warm_engine.stats.cache_hits == 4


def test_mips_spec_identity():
    a = mips_spec("simd", "        ADD.W D1,D2")
    b = mips_spec("mimd", "        ADD.W D1,D2")
    c = mips_spec("simd", "        MOVE.W 2(A0),D2")
    assert len({a.content_hash, b.content_hash, c.content_hash}) == 3
    assert a.engine == "micro"


def test_canonical_json_sorts_keys():
    assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == \
        '{"a":{"c":3,"d":2},"b":1}'
