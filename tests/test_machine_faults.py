"""Fault plans on the simulated machine: degraded routing and fail-stop.

The machine half of the fault campaign: a :class:`FaultPlan` flowing into
:class:`PASMMachine` (directly and through ``SimJobSpec``) must force
extra-stage rerouting with a verified product, charge the degraded
transit penalty, terminate fail-stopped runs with a structured error
instead of hanging, and reject plans it cannot honour.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    NetworkFaultError,
    PEFailStopError,
)
from repro.exec import SimJobSpec, execute_job, matmul_spec
from repro.faults import FaultPlan, PEFailStop, representative_fault_plan
from repro.faults.campaign import iter_single_faults
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.machine.partition import Partition
from repro.network import ExtraStageCubeTopology, Fault, FaultKind
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul
from tests.engines import signature

CFG = PrototypeConfig.calibrated()


def _shift_plan(p: int) -> FaultPlan:
    """The exhibits' representative degraded plan for a p-PE partition."""
    topo = ExtraStageCubeTopology(CFG.n_pes)
    return representative_fault_plan(
        topo, Partition(CFG, p).shift_permutation()
    )


def _failstop_plan(p: int, logical: int, at: float = 0.0,
                   timeout: float = 30_000.0) -> FaultPlan:
    victim = Partition(CFG, p).physical_pe(logical)
    return FaultPlan(failstops=(PEFailStop(victim, at),),
                     failstop_timeout=timeout)


def _run(mode: ExecutionMode, n: int, p: int, plan: FaultPlan | None):
    machine = PASMMachine(CFG, partition_size=p, fault_plan=plan)
    bundle = build_matmul(mode, n, p,
                          device_symbols=CFG.device_symbols())
    a, b = generate_matrices(n)
    return machine, run_matmul(machine, bundle, a, b)


# ---------------------------------------------------------------------------
# Degraded routing on the instruction-level engine
def test_degraded_micro_run_reroutes_and_verifies():
    plan = _shift_plan(4)
    machine, run = _run(ExecutionMode.SMIMD, 16, 4, plan)
    _, clean = _run(ExecutionMode.SMIMD, 16, 4, None)
    assert (run.product == clean.product).all()  # rerouting is invisible
    assert machine.rerouted_circuits > 0  # ...but genuinely happened
    assert run.result.cycles >= clean.result.cycles


def test_extra_stage_transit_penalty_is_charged():
    """The +net_extra_stage_cycles/byte lever works; at the calibrated 4
    cycles it hides behind per-element software overhead (the exhibit
    reports slowdown 1.0), so exaggerate it to observe the charge."""
    slow_cfg = CFG.with_overrides(net_extra_stage_cycles=500)
    plan = _shift_plan(4)
    machine = PASMMachine(slow_cfg, partition_size=4, fault_plan=plan)
    bundle = build_matmul(ExecutionMode.SMIMD, 16, 4,
                          device_symbols=slow_cfg.device_symbols())
    a, b = generate_matrices(16)
    degraded = run_matmul(machine, bundle, a, b)
    _, clean = _run(ExecutionMode.SMIMD, 16, 4, None)
    assert (degraded.product == clean.product).all()
    assert degraded.result.cycles > clean.result.cycles


def test_unroutable_plan_raises_structured_error():
    """With the extra stage disabled, a mid-stage link fault on the shift
    route leaves no circuit setting — the machine must refuse, not hang."""
    mapping = Partition(CFG, 4).shift_permutation()
    topo = ExtraStageCubeTopology(CFG.n_pes)
    source, dest = next(iter(sorted(mapping.items())))
    from repro.network import route

    path = route(topo, source, dest, extra_stage_enabled=False)
    dead_link = Fault(FaultKind.LINK, 1, path.lines[2])
    plan = FaultPlan(faults=(dead_link,), extra_stage_enabled=False)
    machine = PASMMachine(CFG, partition_size=4, fault_plan=plan)
    with pytest.raises(NetworkFaultError) as exc_info:
        machine.connect_shift_circuit()
    assert "link@stage1" in str(exc_info.value)


# ---------------------------------------------------------------------------
# Single-fault sweep, differentially: every degraded schedule the network
# can produce must be bit-identical on the lockstep and pure-event engines
_ALL_SINGLE_FAULTS = list(iter_single_faults(ExtraStageCubeTopology(CFG.n_pes)))


def _assert_fault_identical(fault: Fault) -> None:
    plan = FaultPlan(faults=(fault,))
    lockstep = signature(ExecutionMode.SMIMD, 8, 4, "lockstep",
                         fault_plan=plan)
    pure = signature(ExecutionMode.SMIMD, 8, 4, "pure-events",
                     fault_plan=plan)
    assert lockstep == pure
    # Degraded or not, the product must stay correct.
    clean = signature(ExecutionMode.SMIMD, 8, 4, "lockstep")
    assert lockstep["product"] == clean["product"]


@pytest.mark.parametrize("fault", _ALL_SINGLE_FAULTS[::8],
                         ids=lambda f: f"{f.kind.value}@s{f.stage}l{f.line}")
def test_single_fault_sample_identical_across_engines(fault):
    """Tier-1 sample of the single-fault universe (every 8th fault): a
    degraded S/MIMD run — extra-stage rerouting, transit penalties, and
    all — must produce the same signature on both engine extremes."""
    _assert_fault_identical(fault)


@pytest.mark.slow
@pytest.mark.parametrize("fault", _ALL_SINGLE_FAULTS,
                         ids=lambda f: f"{f.kind.value}@s{f.stage}l{f.line}")
def test_single_fault_sweep_identical_across_engines(fault):
    """The exhaustive sweep (104 faults x 2 engines), for the slow lane."""
    _assert_fault_identical(fault)


# ---------------------------------------------------------------------------
# Fail-stop detection
@pytest.mark.parametrize("mode", [ExecutionMode.SMIMD, ExecutionMode.SIMD])
def test_dead_pe_is_detected_not_hung(mode):
    plan = _failstop_plan(4, logical=1, at=0.0)
    victim = plan.failstops[0].pe
    with pytest.raises(PEFailStopError) as exc_info:
        _run(mode, 16, 4, plan)
    err = exc_info.value
    assert err.pes == (victim,)
    assert err.detected_at > 0
    assert err.timeout == plan.failstop_timeout
    assert f"PE{victim}" in str(err) or str(victim) in str(err)


def test_mimd_dead_pe_detected_at_deadline():
    """MIMD has no barriers; detection falls to the bounded-wait deadline."""
    plan = _failstop_plan(4, logical=2, at=0.0, timeout=5_000.0)
    with pytest.raises(PEFailStopError) as exc_info:
        _run(ExecutionMode.MIMD, 16, 4, plan)
    assert plan.failstops[0].pe in exc_info.value.pes


def test_late_strike_does_not_disturb_a_finished_run():
    healthy_cycles = _run(ExecutionMode.SMIMD, 16, 4, None)[1].result.cycles
    plan = _failstop_plan(4, logical=1, at=healthy_cycles + 10_000.0)
    _, run = _run(ExecutionMode.SMIMD, 16, 4, plan)
    assert run.result.cycles == healthy_cycles


def test_failstop_outside_partition_is_rejected():
    physical = sorted(Partition(CFG, 4).physical_pe(i) for i in range(4))
    outsider = next(pe for pe in range(CFG.n_pes) if pe not in physical)
    plan = FaultPlan(failstops=(PEFailStop(outsider),))
    with pytest.raises(ConfigurationError) as exc_info:
        PASMMachine(CFG, partition_size=4, fault_plan=plan)
    assert str(outsider) in str(exc_info.value)


# ---------------------------------------------------------------------------
# Plans through the execution engine's job layer
def test_degraded_job_payload_reports_rerouting():
    spec = matmul_spec(ExecutionMode.SMIMD, 16, 4, engine="micro",
                       config=CFG, fault_plan=_shift_plan(4))
    payload = execute_job(spec)
    assert payload["verified"] is True
    assert payload["degraded"] is True
    assert payload["rerouted_circuits"] > 0


def test_macro_degraded_job_charges_and_checks_routability():
    plan = _shift_plan(4)
    clean = execute_job(matmul_spec(ExecutionMode.SMIMD, 64, 4,
                                    engine="macro", config=CFG))
    degraded = execute_job(matmul_spec(ExecutionMode.SMIMD, 64, 4,
                                       engine="macro", config=CFG,
                                       fault_plan=plan))
    assert degraded["degraded"] is True
    assert degraded["cycles"] >= clean["cycles"]
    # An inadmissible plan is refused up front.
    mapping = Partition(CFG, 4).shift_permutation()
    topo = ExtraStageCubeTopology(CFG.n_pes)
    from repro.network import route

    source, dest = next(iter(sorted(mapping.items())))
    path = route(topo, source, dest, extra_stage_enabled=False)
    bad = FaultPlan(faults=(Fault(FaultKind.LINK, 1, path.lines[2]),),
                    extra_stage_enabled=False)
    with pytest.raises(NetworkFaultError):
        execute_job(matmul_spec(ExecutionMode.SMIMD, 64, 4, engine="macro",
                                config=CFG, fault_plan=bad))


def test_macro_engine_rejects_failstop_plans():
    spec = matmul_spec(ExecutionMode.SMIMD, 64, 4, engine="macro",
                       config=CFG, fault_plan=_failstop_plan(4, 1))
    with pytest.raises(ConfigurationError, match="micro engine"):
        execute_job(spec)


# ---------------------------------------------------------------------------
# Spec hashing with plans aboard
def test_fault_plan_participates_in_spec_hash():
    base = matmul_spec(ExecutionMode.SMIMD, 16, 4, config=CFG)
    planned = matmul_spec(ExecutionMode.SMIMD, 16, 4, config=CFG,
                          fault_plan=_shift_plan(4))
    same = matmul_spec(ExecutionMode.SMIMD, 16, 4, config=CFG,
                       fault_plan=_shift_plan(4))
    assert base.content_hash != planned.content_hash
    assert planned.content_hash == same.content_hash


def test_spec_with_plan_round_trips():
    spec = matmul_spec(ExecutionMode.SMIMD, 16, 4, config=CFG,
                       fault_plan=_shift_plan(4))
    clone = SimJobSpec.from_dict(spec.to_dict())
    assert clone.fault_plan == spec.fault_plan
    assert clone.content_hash == spec.content_hash
    # Plan-free specs keep their historical hash shape: no fault_plan key.
    assert "fault_plan" not in matmul_spec(
        ExecutionMode.SMIMD, 16, 4, config=CFG
    ).to_dict()
