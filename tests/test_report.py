"""Tests for the full reproduction report generator."""

import pytest

from repro.core import DecouplingStudy
from repro.core.report import full_report


@pytest.fixture(scope="module")
def report_text():
    # Two seeds and no extensions keep the test fast while exercising
    # every code path.
    return full_report(
        DecouplingStudy(), seeds=(1, 19880815), include_extensions=False
    )


def test_report_sections_present(report_text):
    assert "machine configuration" in report_text
    assert "cross-engine spot check" in report_text
    assert "headline result replication" in report_text
    for exhibit in ("table1", "fig6", "fig7", "fig8", "fig11", "fig12"):
        assert exhibit in report_text


def test_report_excludes_extensions_when_asked(report_text):
    assert "ext-dma" not in report_text


def test_report_quotes_the_paper_number(report_text):
    assert "(paper: approximately 14)" in report_text


def test_engine_errors_are_small(report_text):
    """The spot-check table's every error entry stays within ±2%."""
    in_table = False
    errors = []
    for line in report_text.splitlines():
        if line.startswith("mode "):
            in_table = True
            continue
        if in_table:
            if "%" not in line:
                break
            errors.append(abs(float(line.split()[-1].rstrip("%"))))
    assert errors and all(e <= 2.0 for e in errors)


def test_runner_report_flag(tmp_path, capsys):
    from repro.experiments.runner import main

    target = tmp_path / "report.txt"
    rc = main(["--report", str(target)])
    assert rc == 0
    text = target.read_text()
    assert "Reproduction report" in text
    assert "crossover" in text
