"""The shared content-addressed store: concurrency, integrity, LRU.

The store is the fleet's common ground — N ``pasm-serve`` processes
point at one root — so these tests hammer exactly the properties that
make sharing safe: atomic publication under a genuine multi-process
race (one intact entry, digest-verified), a sqlite index that survives
concurrent writers (WAL + busy timeout + bounded retries), recency as
an index column rather than a file atime, and a hypothesis model over
interleaved ``get``/``put``/``prune`` sequences.
"""

import json
import multiprocessing
import shutil
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import SharedStore, content_hash_of, default_store_root
from repro.exec.store import INDEX_DB

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ---------------------------------------------------------------------------
# Basics: roundtrip, integrity, layout
class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        store.put("k1", {"cycles": 42.0})
        entry = store.get("k1")
        assert entry["payload"] == {"cycles": 42.0}
        assert entry["version"] == "1.0"
        assert entry["payload_sha256"] == content_hash_of({"cycles": 42.0})

    def test_layout_is_version_slash_key(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        path = store.put("abc123", {"x": 1})
        assert path == tmp_path / "1.0" / "abc123.json"
        assert path.exists()

    def test_missing_key_is_none(self, tmp_path):
        assert SharedStore(tmp_path, version="1.0").get("nope") is None

    def test_foreign_version_is_a_miss(self, tmp_path):
        SharedStore(tmp_path, version="1.0").put("k", {"x": 1})
        assert SharedStore(tmp_path, version="2.0").get("k") is None

    def test_tampered_payload_fails_digest_check(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        path = store.put("k", {"x": 1})
        entry = json.loads(path.read_text())
        entry["payload"]["x"] = 2  # flip a bit, keep the stale digest
        path.write_text(json.dumps(entry))
        assert store.get("k") is None

    def test_env_var_names_the_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "fleet"))
        assert default_store_root() == str(tmp_path / "fleet")
        store = SharedStore(version="1.0")
        store.put("k", {"x": 1})
        assert (tmp_path / "fleet" / "1.0" / "k.json").exists()


# ---------------------------------------------------------------------------
# The sqlite index
class TestIndex:
    def test_index_runs_in_wal_mode(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        store.put("k", {"x": 1})
        with sqlite3.connect(tmp_path / INDEX_DB) as conn:
            (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        assert mode.lower() == "wal"

    def test_hit_refreshes_last_access(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        store.put("k", {"x": 1})
        store.set_last_access("k", 100.0)
        assert store.last_access("k") == 100.0
        store.get("k")
        assert store.last_access("k") > 100.0

    def test_lost_index_loses_recency_not_results(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        store.put("k", {"x": 1})
        store.close()
        (tmp_path / INDEX_DB).unlink()
        rebuilt = SharedStore(tmp_path, version="1.0")
        # Still a hit — and the hit re-indexes the entry.
        assert rebuilt.get("k")["payload"] == {"x": 1}
        assert rebuilt.last_access("k") is not None

    def test_bounded_retries_on_a_locked_database(self, tmp_path,
                                                  monkeypatch):
        store = SharedStore(tmp_path, version="1.0")
        attempts = []

        def flaky(conn):
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "through"

        monkeypatch.setattr("repro.exec.store.time.sleep", lambda s: None)
        assert store._retry(flaky) == "through"
        assert len(attempts) == 3

    def test_non_lock_errors_surface_immediately(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")

        def broken(conn):
            raise sqlite3.OperationalError("no such table: nonsense")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            store._retry(broken)


# ---------------------------------------------------------------------------
# Concurrent writers: two OS processes race to publish the same hash
def _race_writer(root, key, payload, barrier, rounds):
    store = SharedStore(root, version="1.0")
    barrier.wait(timeout=30)
    for _ in range(rounds):
        store.put(key, payload)


class TestConcurrentWriters:
    def test_same_key_race_yields_one_intact_entry(self, tmp_path):
        """Two processes hammering one content hash: readers must only
        ever see a complete, digest-valid entry, and afterwards exactly
        one file exists whose sha256 matches its payload."""
        payload = {"cycles": 7.0, "blob": "x" * 2048}
        key = content_hash_of(payload)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_race_writer,
                        args=(tmp_path, key, payload, barrier, 40))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        store = SharedStore(tmp_path, version="1.0")
        barrier.wait(timeout=30)
        # Read concurrently with the writers: every observation must be
        # a miss (not yet published) or the full, verified entry.
        while any(p.is_alive() for p in procs):
            entry = store.get(key)
            if entry is not None:
                assert entry["payload"] == payload
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        files = list((tmp_path / "1.0").glob("*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["payload"] == payload
        assert entry["payload_sha256"] == content_hash_of(payload)
        assert store.get(key)["payload"] == payload

    def test_distinct_keys_from_racing_processes_all_land(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = []
        for who in range(2):
            payload = {"writer": who}
            procs.append(ctx.Process(
                target=_race_writer,
                args=(tmp_path, f"key-{who}", payload, barrier, 10),
            ))
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        store = SharedStore(tmp_path, version="1.0")
        for who in range(2):
            assert store.get(f"key-{who}")["payload"] == {"writer": who}
        assert store.count() == 2


# ---------------------------------------------------------------------------
# LRU eviction by last_access column
class TestPrune:
    def test_evicts_by_index_recency_oldest_first(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        for i in range(4):
            store.put(f"k{i}", {"i": i})
            store.set_last_access(f"k{i}", 100.0 + i)
        size = store.path_for("k0").stat().st_size
        assert store.prune(2 * size) == 2
        assert store.get("k0") is None
        assert store.get("k1") is None
        assert store.get("k2")["payload"] == {"i": 2}
        assert store.get("k3")["payload"] == {"i": 3}

    def test_unindexed_files_fall_back_to_mtime(self, tmp_path):
        import os

        store = SharedStore(tmp_path, version="1.0")
        store.put("young", {"x": 1})
        store.set_last_access("young", 10_000.0)
        foreign = tmp_path / "1.0" / "foreign.json"
        foreign.write_text("{}")
        os.utime(foreign, (1.0, 1.0))  # ancient mtime: first out
        store.close()
        (tmp_path / INDEX_DB).unlink()
        rebuilt = SharedStore(tmp_path, version="1.0")
        rebuilt.touch("young", 10_000.0)  # re-index the survivor only
        size = rebuilt.path_for("young").stat().st_size
        assert rebuilt.prune(size) >= 1
        assert not foreign.exists()
        assert rebuilt.get("young")["payload"] == {"x": 1}

    def test_under_cap_is_a_noop(self, tmp_path):
        store = SharedStore(tmp_path, version="1.0")
        store.put("k", {"x": 1})
        assert store.prune(10 ** 9) == 0
        assert store.get("k")["payload"] == {"x": 1}


# ---------------------------------------------------------------------------
# Hypothesis: interleaved get/put/prune against a model dict
_KEYS = ("ka", "kb", "kc", "kd")

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(_KEYS),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("get"), st.sampled_from(_KEYS)),
        st.tuples(st.just("prune_keep"),
                  st.integers(min_value=0, max_value=len(_KEYS))),
    ),
    max_size=24,
)


@SETTINGS
@given(ops=_ops)
def test_store_agrees_with_a_model(tmp_path, ops):
    """Any interleaving of put/get/prune behaves like a dict with LRU.

    Recency is stamped with a deterministic counter after every touch,
    so the model knows exactly which entries a prune evicts: the cap is
    set to the byte-size of the ``keep`` most-recent entries and the
    rest must be gone.
    """
    # tmp_path is per-test, not per-example: give every hypothesis
    # example a pristine root so the model starts from truth.
    root = tmp_path / "store"
    shutil.rmtree(root, ignore_errors=True)
    store = SharedStore(root, version="1.0")
    model: dict[str, int] = {}
    stamp: dict[str, int] = {}
    clock = 0
    for op in ops:
        clock += 1
        if op[0] == "put":
            _, key, value = op
            store.put(key, {"v": value})
            store.set_last_access(key, float(clock))
            model[key] = value
            stamp[key] = clock
        elif op[0] == "get":
            _, key = op
            entry = store.get(key)
            if key in model:
                assert entry is not None and entry["payload"] == {
                    "v": model[key]
                }
                store.set_last_access(key, float(clock))
                stamp[key] = clock
            else:
                assert entry is None
        else:  # prune to the newest `keep` entries
            _, keep = op
            by_age = sorted(model, key=lambda k: stamp[k], reverse=True)
            keepers = set(by_age[:keep])
            cap = sum(
                store.path_for(k).stat().st_size for k in keepers
            )
            store.prune(cap)
            for key in list(model):
                if key not in keepers:
                    del model[key]
                    del stamp[key]
    for key in _KEYS:
        entry = store.get(key)
        if key in model:
            assert entry["payload"] == {"v": model[key]}
        else:
            assert entry is None
    assert store.count() == len(model)
