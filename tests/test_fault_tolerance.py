"""The Extra-Stage Cube's single-fault-tolerance claim, exhaustively.

Adams & Siegel: with the extra stage enabled, *any* single interchange-box
or inter-stage-link fault leaves every (source, destination) pair
routable.  These tests prove it exhaustively at N ∈ {4, 8, 16} and
property-test it by sampling at larger N (hypothesis), plus the plan /
campaign plumbing around the claim.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NetworkFaultError
from repro.faults import (
    FaultPlan,
    PEFailStop,
    blocked_pairs,
    count_single_faults,
    double_fault_sweep,
    iter_single_faults,
    representative_fault_plan,
    single_fault_sweep,
)
from repro.network import (
    CircuitSwitchedNetwork,
    ExtraStageCubeTopology,
    Fault,
    FaultKind,
    route,
)

SWEEP_SIZES = (4, 8, 16)

#: single faults of an N-terminal ESC: boxes in all n+1 stages, links on
#: every inter-stage boundary (final-stage output links are the
#: destination terminals' only wires — outside the tolerance universe).
EXPECTED_FAULTS = {4: 14, 8: 40, 16: 104}


# ---------------------------------------------------------------------------
# The guarantee, exhaustively
@pytest.mark.parametrize("n", SWEEP_SIZES)
def test_every_single_fault_leaves_every_pair_routable(n):
    topo = ExtraStageCubeTopology(n)
    for fault in iter_single_faults(topo):
        blocked = blocked_pairs(topo, {fault})
        assert not blocked, (
            f"N={n}: single fault {fault} blocked pairs {blocked[:5]} — "
            "the Adams & Siegel guarantee is violated"
        )


@pytest.mark.parametrize("n", SWEEP_SIZES)
def test_single_fault_sweep_reports_100_percent(n):
    report = single_fault_sweep(n)
    assert report.combos == EXPECTED_FAULTS[n]
    assert report.survived == report.combos
    assert report.routability_pct == 100.0
    assert report.blocked_pairs == 0
    assert report.exhaustive


@pytest.mark.parametrize("n", SWEEP_SIZES)
def test_count_single_faults_matches_enumeration(n):
    topo = ExtraStageCubeTopology(n)
    faults = list(iter_single_faults(topo))
    assert len(faults) == len(set(faults)) == count_single_faults(topo)
    assert len(faults) == EXPECTED_FAULTS[n]
    # No final-stage link faults: those output lines are the terminals.
    last = topo.n_stages - 1
    assert not any(f.kind is FaultKind.LINK and f.stage == last
                   for f in faults)


def test_generalized_cube_alone_is_not_fault_tolerant():
    """Contrast: with the extra stage bypassed, a mid-stage link fault
    cuts off every pair whose unique GC route uses that wire."""
    topo = ExtraStageCubeTopology(8)
    fault = Fault(FaultKind.LINK, 2, 0)
    assert blocked_pairs(topo, {fault}, extra_stage_enabled=False)
    assert not blocked_pairs(topo, {fault}, extra_stage_enabled=True)


# ---------------------------------------------------------------------------
# The same property, sampled at sizes too big to sweep exhaustively
@st.composite
def _fault_and_pair(draw):
    n = draw(st.sampled_from((32, 64, 128)))
    topo = ExtraStageCubeTopology(n)
    faults = list(iter_single_faults(topo))
    fault = faults[draw(st.integers(0, len(faults) - 1))]
    source = draw(st.integers(0, n - 1))
    dest = draw(st.integers(0, n - 1))
    return topo, fault, source, dest


@settings(max_examples=200, deadline=None)
@given(_fault_and_pair())
def test_random_single_fault_keeps_random_pair_routable(case):
    topo, fault, source, dest = case
    path = route(topo, source, dest, faults={fault},
                 extra_stage_enabled=True)
    assert path.lines[0] == source and path.lines[-1] == dest
    # The returned path genuinely avoids the fault.
    if fault.kind is FaultKind.LINK:
        assert path.lines[fault.stage + 1] != fault.line


# ---------------------------------------------------------------------------
# Beyond the guarantee
def test_double_fault_sweep_exhaustive_at_8():
    report = double_fault_sweep(8)
    assert report.exhaustive
    assert report.combos == 40 * 39 // 2
    assert 0 < report.survived < report.combos  # tolerance, but no promise
    assert report.to_dict()["survival_pct"] == pytest.approx(
        100.0 * report.survived / report.combos, abs=1e-3
    )


def test_double_fault_sweep_sampled_is_deterministic():
    a = double_fault_sweep(16, samples=60, seed=7)
    b = double_fault_sweep(16, samples=60, seed=7)
    assert not a.exhaustive and a.combos == 60
    assert a == b


@pytest.mark.slow
def test_double_fault_sweep_exhaustive_at_16():
    """Every pair of single faults at N=16 (~5.4k combos, minutes of
    routing) — runs in the non-blocking CI job only."""
    report = double_fault_sweep(16, max_exhaustive=10_000)
    assert report.exhaustive
    assert report.combos == 104 * 103 // 2
    assert 0 < report.survived < report.combos


# ---------------------------------------------------------------------------
# Structured routing failures
def test_network_fault_error_names_faults_and_candidates():
    topo = ExtraStageCubeTopology(8)
    # Kill both extra-stage output lines a 0->0 route could use.
    faults = {Fault(FaultKind.LINK, 0, 0), Fault(FaultKind.LINK, 0, 1)}
    with pytest.raises(NetworkFaultError) as exc_info:
        route(topo, 0, 0, faults=faults, extra_stage_enabled=True)
    err = exc_info.value
    assert err.faults == tuple(sorted(faults,
                                      key=lambda f: (f.kind.value, f.stage,
                                                     f.line)))
    assert len(err.candidates) == 2  # straight and exchanged, both rejected
    message = str(err)
    assert "link@stage0/line0" in message
    assert "link@stage0/line1" in message
    assert "->" in message  # the rejected candidate paths are spelled out


def test_release_all_clears_claims():
    topo = ExtraStageCubeTopology(16)
    net = CircuitSwitchedNetwork(topo, extra_stage_enabled=True)
    net.allocate_permutation({i: (i - 1) % 16 for i in range(16)})
    assert net._claims
    net.release_all()
    assert net._claims == {}
    # Orphaned claims (a released circuit that left debris) go too.
    net._claims[(1, 1)] = 999
    net.release_all()
    assert net._claims == {}
    # The network is genuinely reusable after release.
    net.allocate_permutation({i: (i + 1) % 16 for i in range(16)})
    assert net._claims


# ---------------------------------------------------------------------------
# FaultPlan: canonical, hashable, round-trippable
def test_fault_plan_canonicalizes_and_hashes_stably():
    f1 = Fault(FaultKind.BOX, 2, 4)
    f2 = Fault(FaultKind.LINK, 1, 3)
    plan_a = FaultPlan(faults=(f1, f2, f1),
                       failstops=(PEFailStop(8, 10.0), PEFailStop(4)))
    plan_b = FaultPlan(faults=(f2, f1),
                       failstops=(PEFailStop(4), PEFailStop(8, 10.0)))
    assert plan_a == plan_b
    assert plan_a.content_hash == plan_b.content_hash
    assert plan_a.faults == (f1, f2)  # box before link, canonical order
    assert [s.pe for s in plan_a.failstops] == [4, 8]


def test_fault_plan_round_trips_through_dict():
    plan = FaultPlan(
        faults=(Fault(FaultKind.LINK, 0, 5),),
        extra_stage_enabled=True,
        failstops=(PEFailStop(12, 250.0),),
        failstop_timeout=1234.0,
    )
    clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert clone == plan
    assert clone.content_hash == plan.content_hash


def test_fault_plan_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        FaultPlan(failstops=(PEFailStop(3), PEFailStop(3, 9.0)))  # dup PE
    with pytest.raises(ConfigurationError):
        FaultPlan(failstop_timeout=0.0)
    with pytest.raises(ConfigurationError):
        PEFailStop(-1)
    with pytest.raises(ConfigurationError):
        PEFailStop(2, at=-5.0)


def test_fault_plan_queries():
    plan = FaultPlan(faults=(Fault(FaultKind.BOX, 1, 0),),
                     failstops=(PEFailStop(4, 100.0),))
    assert not plan.is_empty
    assert FaultPlan().is_empty
    assert plan.network_faults() == frozenset({Fault(FaultKind.BOX, 1, 0)})
    assert plan.failstop_at(4) == 100.0
    assert plan.failstop_at(5) is None
    assert "box@s1l0" in plan.describe()
    assert "PE4@100" in plan.describe()


# ---------------------------------------------------------------------------
# The exhibits' representative degraded plan
def test_representative_plan_is_deterministic_and_reroutes():
    topo = ExtraStageCubeTopology(16)
    mapping = {i: (i - 1) % 16 for i in range(16)}
    plan = representative_fault_plan(topo, mapping)
    assert plan == representative_fault_plan(topo, mapping)
    assert len(plan.faults) == 1 and plan.extra_stage_enabled
    net = CircuitSwitchedNetwork(topo, extra_stage_enabled=True,
                                 faults=set(plan.network_faults()))
    circuits = net.allocate_permutation(mapping)
    assert sum(1 for c in circuits if c.path.extra_exchanged) > 0
