"""Tests for tracing and instrumentation."""

import pytest

from repro.machine import PASMMachine, PrototypeConfig
from repro.m68k.assembler import assemble
from repro.mc import EnqueueBlock, Loop
from repro.trace import activity_gantt, format_trace, queue_occupancy

CFG = PrototypeConfig()


def traced_serial_run(source):
    machine = PASMMachine(CFG, partition_size=1)
    program = assemble(source, predefined=CFG.device_symbols())
    machine.pe(0).cpu.trace = True
    machine.run_serial(program)
    return machine


class TestFormatTrace:
    def test_listing_contents(self):
        machine = traced_serial_run(
            """
            .timecat mult
            MOVE.W  #$FF,D0
            MULU    D0,D1
            .timecat control
            HALT
            """
        )
        records = machine.pe(0).cpu.trace_records
        text = format_trace(records)
        assert "MULU" in text and "mult" in text
        # The MULU with an 8-ones multiplier: 54 manual cycles.
        assert "54" in text

    def test_limit_truncates(self):
        machine = traced_serial_run("    NOP\n" * 30 + "    HALT")
        text = format_trace(machine.pe(0).cpu.trace_records, limit=5)
        assert "more records" in text
        assert text.count("NOP") == 5

    def test_elapsed_reflects_wait_states(self):
        machine = traced_serial_run("    NOP\n    HALT")
        rec = machine.pe(0).cpu.trace_records[0]
        # NOP: 4 manual cycles + 1 main-memory wait state (+refresh).
        assert rec.elapsed >= rec.timing.cycles + CFG.ws_main


class TestActivityGantt:
    def test_rows_and_legend(self):
        machine = traced_serial_run(
            """
            .timecat mult
            MOVE.W  #$FFFF,D0
            MULU    D0,D1
            MULU    D0,D2
            MULU    D0,D3
            HALT
            """
        )
        chart = activity_gantt({"PE0": machine.pe(0).cpu.trace_records})
        assert "PE0 |" in chart
        assert "M" in chart  # multiply-dominated buckets
        assert "M=mult" in chart

    def test_empty(self):
        assert "(no traces)" in activity_gantt({})


class TestQueueOccupancy:
    def test_simd_run_records_samples(self):
        machine = PASMMachine(CFG, partition_size=4)
        blocks = {
            "body": assemble("    MULU D1,D2").instruction_list(),
            "fini": assemble("    HALT").instruction_list(),
        }
        machine.run_simd(
            [Loop(20, (EnqueueBlock("body"),)), EnqueueBlock("fini")], blocks
        )
        queue = machine.queues[0]
        stats = queue_occupancy(
            queue.occupancy_samples, CFG.queue_capacity_words
        )
        assert stats.max_words >= 1
        assert 0 <= stats.fraction_empty <= 1
        assert len(stats.sparkline) == 60

    def test_queue_stays_nonfull_when_pe_bound(self):
        """The paper's superlinearity precondition: with a slow PE body the
        queue neither empties (after startup) nor fills."""
        machine = PASMMachine(CFG, partition_size=4)
        data = assemble(
            "    HALT\n    .data\n    .org $4000\nv: .dc.w $FFFF"
        )
        blocks = {
            "init": assemble("    MOVE.W $4000,D1",
                             predefined=CFG.device_symbols()).instruction_list(),
            "body": assemble("    MULU D1,D2").instruction_list(),
            "fini": assemble("    HALT").instruction_list(),
        }
        machine.run_simd(
            [EnqueueBlock("init"), Loop(50, (EnqueueBlock("body"),)),
             EnqueueBlock("fini")],
            blocks,
            data_programs=[data] * 4,
        )
        stats = queue_occupancy(
            machine.queues[0].occupancy_samples, CFG.queue_capacity_words
        )
        assert stats.fraction_full == 0.0
        assert stats.fraction_empty < 0.25  # startup only

    def test_empty_samples(self):
        stats = queue_occupancy([], 16)
        assert stats.mean_words == 0.0 and stats.fraction_empty == 1.0

    def test_str_rendering(self):
        stats = queue_occupancy([(0.0, 0), (10.0, 4), (20.0, 0)], 8,
                                end=30.0)
        text = str(stats)
        assert "mean" in text and "empty" in text
        assert stats.mean_words == pytest.approx((10 * 0 + 10 * 4 + 10 * 0) / 30)
