"""Unit tests for the service client's retry and backoff policy.

The transport is stubbed out (``_request_once`` is replaced with a
scripted sequence of replies), so these tests pin the *policy*: full
jitter within an exponentially growing window, ``Retry-After`` honored
as a floor, retryable-vs-final classification, and give-up behaviour.
"""

import random

import pytest

from repro.serve import ServeClientError
from repro.serve.client import RETRYABLE, HttpReply, ServeClient


class ScriptedClient(ServeClient):
    """A ServeClient whose transport replays a scripted reply sequence."""

    def __init__(self, script, **kwargs):
        self.script = list(script)
        self.requests = []
        self.addresses = []
        self.slept = []
        kwargs.setdefault("rng", random.Random(7))
        kwargs.setdefault("sleep", self.slept.append)
        super().__init__(port=1, **kwargs)

    def _request_once(self, method, path, body, timeout, headers=None,
                      *, address=None):
        self.requests.append((method, path))
        self.addresses.append(address or (self.host, self.port))
        self.sent_headers = headers
        item = self.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item


def reply(status, body=b"{}", **headers):
    return HttpReply(status=status,
                     headers={k.replace("_", "-"): v
                              for k, v in headers.items()},
                     body=body)


class TestBackoffDelay:
    def test_full_jitter_within_exponential_window(self):
        client = ServeClient(port=1, backoff_base=0.1, backoff_cap=100.0,
                             rng=random.Random(3))
        for attempt in range(8):
            window = 0.1 * (2 ** attempt)
            for _ in range(50):
                delay = client._backoff_delay(attempt, None)
                assert 0.0 <= delay <= window

    def test_window_capped(self):
        client = ServeClient(port=1, backoff_base=1.0, backoff_cap=2.0,
                             rng=random.Random(3))
        assert all(client._backoff_delay(10, None) <= 2.0
                   for _ in range(100))

    def test_retry_after_is_a_floor_not_a_ceiling(self):
        client = ServeClient(port=1, backoff_base=0.001, backoff_cap=0.002,
                             rng=random.Random(3))
        # Jitter window is tiny; the server's floor must win.
        assert all(client._backoff_delay(a, 1.5) >= 1.5 for a in range(5))

    def test_jitter_is_deterministic_under_pinned_rng(self):
        a = ServeClient(port=1, rng=random.Random(42))
        b = ServeClient(port=1, rng=random.Random(42))
        assert [a._backoff_delay(i, None) for i in range(6)] == \
            [b._backoff_delay(i, None) for i in range(6)]


class TestRetryLoop:
    def test_429_sequence_recovers(self):
        client = ScriptedClient(
            [reply(429, retry_after="0.5"), reply(429, retry_after="0.5"),
             reply(200, body=b'{"ok": true}')],
            max_retries=5, backoff_base=0.01, backoff_cap=0.05,
        )
        out = client.request("POST", "/v1/jobs")
        assert out.status == 200
        assert client.retries_performed == 2
        assert len(client.slept) == 2
        # Each delay honors the server's Retry-After floor.
        assert all(d >= 0.5 for d in client.slept)

    def test_transport_errors_retried(self):
        client = ScriptedClient(
            [OSError("connection refused"), reply(200)],
            max_retries=3,
        )
        assert client.request("GET", "/healthz").status == 200
        assert client.retries_performed == 1

    def test_gives_up_after_max_retries_with_status(self):
        client = ScriptedClient([reply(429)] * 4, max_retries=3,
                                backoff_base=0.001, backoff_cap=0.002)
        with pytest.raises(ServeClientError) as err:
            client.request("POST", "/v1/jobs")
        assert err.value.status == 429
        assert err.value.attempts == 4
        assert len(client.requests) == 4

    def test_unreachable_service_surfaces_transport_error(self):
        client = ScriptedClient([OSError("boom")] * 3, max_retries=2,
                                backoff_base=0.001, backoff_cap=0.002)
        with pytest.raises(ServeClientError) as err:
            client.request("GET", "/healthz")
        assert err.value.status is None
        assert "boom" in str(err.value)

    def test_non_retryable_statuses_return_immediately(self):
        for status in (200, 202, 400, 404, 500):
            assert status not in RETRYABLE
            client = ScriptedClient([reply(status)], max_retries=5)
            assert client.request("GET", "/x").status == status
            assert client.retries_performed == 0

    def test_zero_retries_raises_on_first_refusal(self):
        client = ScriptedClient([reply(503, retry_after="2")], max_retries=0)
        with pytest.raises(ServeClientError) as err:
            client.request("GET", "/healthz")
        assert err.value.status == 503
        assert client.slept == []


class TestReplyParsing:
    def test_json_fallback_on_garbage_body(self):
        r = reply(500, body=b"not json at all")
        assert r.json() == {"error": "not json at all"}

    def test_retry_after_parsing(self):
        assert reply(429, retry_after="2.5").retry_after() == 2.5
        assert reply(429, retry_after="soon").retry_after() is None
        assert reply(429).retry_after() is None

    def test_expect_raises_with_detail(self):
        with pytest.raises(ServeClientError, match="queue full"):
            ServeClient._expect(
                reply(429, body=b'{"error": "queue full"}'), 200)


class TestDefaults:
    def test_port_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
        assert ServeClient().port == 9999
        monkeypatch.delenv("REPRO_SERVE_PORT")
        assert ServeClient().port == 8137
