"""Tests for the extension studies (DMA, design scale, MULS)."""

import pytest

from repro.analysis.statistics import mul_count_stats, transitions_pmf_uniform_range
from repro.core import DecouplingStudy
from repro.experiments.extensions import (
    DMAModel,
    run_ext_design_scale,
    run_ext_dma,
    run_ext_muls,
    with_dma_comm,
)
from repro.machine import ExecutionMode


@pytest.fixture(scope="module")
def study():
    return DecouplingStudy()


class TestDMA:
    def test_dma_always_saves(self, study):
        result = run_ext_dma(study)
        for row in result.rows:
            for cell in row[1:]:
                assert float(cell.rstrip("%")) > 0

    def test_mimd_saves_most(self, study):
        result = run_ext_dma(study)
        for n, simd, smimd, mimd in result.rows:
            assert float(mimd.rstrip("%")) > float(smimd.rstrip("%"))

    def test_saving_shrinks_with_n(self, study):
        result = run_ext_dma(study)
        mimd = [float(row[3].rstrip("%")) for row in result.rows]
        assert mimd == sorted(mimd, reverse=True)

    def test_with_dma_comm_arithmetic(self, study):
        res = study.run(ExecutionMode.MIMD, 64, 4, engine="macro")
        dma = DMAModel(setup_cycles=100, cycles_per_word=10)
        cycles, breakdown = with_dma_comm(res, dma, 64)
        assert breakdown["comm"] == 64 * (100 + 10 * 64)
        assert cycles == pytest.approx(
            res.cycles - res.breakdown["comm"] + breakdown["comm"]
        )

    def test_column_cost(self):
        dma = DMAModel(setup_cycles=50, cycles_per_word=4)
        assert dma.column_cycles(16) == 50 + 64


class TestDesignScale:
    @pytest.fixture(scope="class")
    def scale(self):
        return run_ext_design_scale()

    def test_efficiency_falls_with_p(self, scale):
        for col in (1, 2, 3):
            vals = [row[col] for row in scale.rows]
            assert vals == sorted(vals, reverse=True)

    def test_mode_ordering_holds_at_design_scale(self, scale):
        for _, simd, smimd, mimd in scale.rows:
            assert simd > smimd > mimd

    def test_simd_superlinear_at_moderate_p(self, scale):
        assert scale.rows[0][1] > 1.0  # p=32

    def test_processor_counts(self, scale):
        assert [row[0] for row in scale.rows] == [32, 128, 512, 1024]


class TestMuls:
    def test_distribution_sums_to_one(self):
        for b_max in (2, 256, 65536):
            _, pmf = transitions_pmf_uniform_range(b_max)
            assert pmf.sum() == pytest.approx(1.0)

    def test_stats_match_brute_force(self):
        import numpy as np

        from repro.m68k.timing import muls_cycles

        values = np.arange(256)
        counts = np.array([muls_cycles(int(v)) for v in values])
        mean, std, _ = mul_count_stats(256, "MULS")
        assert 38 + 2 * mean == pytest.approx(counts.mean())
        assert 2 * std == pytest.approx(counts.std())

    def test_emax_exceeds_mean_for_p_gt_1(self):
        mean, _, emax = mul_count_stats(256, "MULS", p=8)
        assert emax > mean

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            mul_count_stats(256, "FMUL")

    def test_experiment_rows(self, study):
        result = run_ext_muls(study)
        ops = [row[0] for row in result.rows]
        assert ops == ["MULU", "MULS"]
        for row in result.rows:
            assert row[1] >= 38  # mean cycles at least the base


class TestSuperlinearDecomposition:
    def test_both_mechanisms_needed(self, study):
        from repro.experiments.extensions import run_ext_superlinear

        result = run_ext_superlinear(study)
        effs = {row[0]: row[1] for row in result.rows}
        full = effs["full SIMD (both mechanisms)"]
        no_fetch = effs[
            "no fetch advantage (ws_main = ws_queue, no refresh)"]
        no_overlap = effs["no control overlap (= S/MIMD)"]
        assert full > 1.0
        assert no_fetch < full
        assert no_overlap < 1.0
        # Each ablation alone removes a real share of the margin.
        assert full - no_fetch > 0.02
        assert full - no_overlap > 0.02


def test_full_width_muls_has_lower_relative_variance():
    """At full 16-bit width MULS and MULU have similar spread; at very
    small ranges MULS keeps more variance (the boundary transition)."""
    _, mulu_std, _ = mul_count_stats(4, "MULU")
    _, muls_std, _ = mul_count_stats(4, "MULS")
    assert muls_std >= mulu_std
