"""Property-based tests for the on-disk result cache and spec hashing.

Hypothesis drives three invariants the cache's correctness rests on:
random specs round-trip ``store -> load`` unchanged, the content hash is
invariant under dictionary key ordering, and a package-version bump
invalidates every entry.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import ResultCache, SimJobSpec, canonical_json, matmul_spec
from repro.machine import ExecutionMode, PrototypeConfig

MODES = (ExecutionMode.SERIAL, ExecutionMode.SIMD, ExecutionMode.SMIMD,
         ExecutionMode.MIMD)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def specs(draw):
    mode = draw(st.sampled_from(MODES))
    p = 1 if mode is ExecutionMode.SERIAL else draw(st.sampled_from((1, 2, 4)))
    n = p * draw(st.sampled_from((1, 2, 4, 16)))
    return matmul_spec(
        mode, n, p,
        added_multiplies=draw(st.integers(min_value=0, max_value=16)),
        engine=draw(st.sampled_from(("micro", "macro"))),
        seed=draw(st.integers(min_value=0, max_value=2 ** 31 - 1)),
        b_max=draw(st.sampled_from((None, 16, 256))),
    )


json_scalars = (st.integers(min_value=-2 ** 53, max_value=2 ** 53)
                | st.floats(allow_nan=False, allow_infinity=False)
                | st.booleans()
                | st.text(max_size=20))

payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    json_scalars | st.lists(json_scalars, max_size=4)
    | st.dictionaries(st.text(min_size=1, max_size=10), json_scalars,
                      max_size=4),
    min_size=1,
    max_size=6,
)


def _scramble(obj):
    """Rebuild nested dicts with reversed key insertion order."""
    if isinstance(obj, dict):
        return {k: _scramble(obj[k]) for k in reversed(list(obj))}
    if isinstance(obj, list):
        return [_scramble(x) for x in obj]
    return obj


@SETTINGS
@given(spec=specs(), payload=payloads)
def test_store_load_round_trip(tmp_path, spec, payload):
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, payload)
    assert cache.load(spec) == payload


@SETTINGS
@given(spec=specs())
def test_content_hash_invariant_under_key_ordering(spec):
    scrambled = SimJobSpec.from_dict(_scramble(spec.to_dict()))
    assert scrambled.content_hash == spec.content_hash
    assert canonical_json(spec.to_dict()) == canonical_json(
        _scramble(spec.to_dict()))


@SETTINGS
@given(spec=specs(), payload=payloads)
def test_version_bump_invalidates(tmp_path, spec, payload):
    old = ResultCache(tmp_path, version="1.0")
    old.store(spec, payload)
    bumped = ResultCache(tmp_path, version="2.0")
    assert bumped.load(spec) is None
    # and the old generation is still intact
    assert old.load(spec) == payload


def test_default_version_is_package_version(tmp_path):
    from repro import __version__

    cache = ResultCache(tmp_path)
    assert cache.version == __version__
    assert cache.dir == tmp_path / __version__


def test_corrupt_entry_is_a_miss_then_repaired(tmp_path):
    spec = matmul_spec(ExecutionMode.SIMD, 16, 4)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 1.0})
    path = cache.entry_path(spec)
    path.write_text("{not json")
    assert cache.load(spec) is None
    cache.store(spec, {"cycles": 2.0})
    assert cache.load(spec) == {"cycles": 2.0}


def test_entry_with_wrong_version_field_is_a_miss(tmp_path):
    spec = matmul_spec(ExecutionMode.SIMD, 16, 4)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 1.0})
    path = cache.entry_path(spec)
    entry = json.loads(path.read_text())
    entry["version"] = "0.9"
    path.write_text(json.dumps(entry))
    assert cache.load(spec) is None


def test_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path, version="1.0")
    assert len(cache) == 0
    for m in range(3):
        cache.store(matmul_spec(ExecutionMode.SIMD, 16, 4,
                                added_multiplies=m), {"m": m})
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0
    assert cache.load(matmul_spec(ExecutionMode.SIMD, 16, 4)) is None


def test_env_var_sets_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    cache = ResultCache(version="1.0")
    cache.store(matmul_spec(ExecutionMode.SIMD, 16, 4), {"x": 1})
    assert (tmp_path / "alt").exists()


def test_stored_entry_records_spec_for_inspection(tmp_path):
    spec = matmul_spec(ExecutionMode.MIMD, 64, 4, added_multiplies=9)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 5.0})
    entry = json.loads(cache.entry_path(spec).read_text())
    assert entry["spec"] == spec.to_dict()
    assert SimJobSpec.from_dict(entry["spec"]) == spec
