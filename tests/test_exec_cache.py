"""Property-based tests for the on-disk result cache and spec hashing.

Hypothesis drives three invariants the cache's correctness rests on:
random specs round-trip ``store -> load`` unchanged, the content hash is
invariant under dictionary key ordering, and a package-version bump
invalidates every entry.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import ResultCache, SimJobSpec, canonical_json, matmul_spec
from repro.machine import ExecutionMode, PrototypeConfig

MODES = (ExecutionMode.SERIAL, ExecutionMode.SIMD, ExecutionMode.SMIMD,
         ExecutionMode.MIMD)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def specs(draw):
    mode = draw(st.sampled_from(MODES))
    p = 1 if mode is ExecutionMode.SERIAL else draw(st.sampled_from((1, 2, 4)))
    n = p * draw(st.sampled_from((1, 2, 4, 16)))
    return matmul_spec(
        mode, n, p,
        added_multiplies=draw(st.integers(min_value=0, max_value=16)),
        engine=draw(st.sampled_from(("micro", "macro"))),
        seed=draw(st.integers(min_value=0, max_value=2 ** 31 - 1)),
        b_max=draw(st.sampled_from((None, 16, 256))),
    )


json_scalars = (st.integers(min_value=-2 ** 53, max_value=2 ** 53)
                | st.floats(allow_nan=False, allow_infinity=False)
                | st.booleans()
                | st.text(max_size=20))

payloads = st.dictionaries(
    st.text(min_size=1, max_size=10),
    json_scalars | st.lists(json_scalars, max_size=4)
    | st.dictionaries(st.text(min_size=1, max_size=10), json_scalars,
                      max_size=4),
    min_size=1,
    max_size=6,
)


def _scramble(obj):
    """Rebuild nested dicts with reversed key insertion order."""
    if isinstance(obj, dict):
        return {k: _scramble(obj[k]) for k in reversed(list(obj))}
    if isinstance(obj, list):
        return [_scramble(x) for x in obj]
    return obj


@SETTINGS
@given(spec=specs(), payload=payloads)
def test_store_load_round_trip(tmp_path, spec, payload):
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, payload)
    assert cache.load(spec) == payload


@SETTINGS
@given(spec=specs())
def test_content_hash_invariant_under_key_ordering(spec):
    scrambled = SimJobSpec.from_dict(_scramble(spec.to_dict()))
    assert scrambled.content_hash == spec.content_hash
    assert canonical_json(spec.to_dict()) == canonical_json(
        _scramble(spec.to_dict()))


@SETTINGS
@given(spec=specs(), payload=payloads)
def test_version_bump_invalidates(tmp_path, spec, payload):
    old = ResultCache(tmp_path, version="1.0")
    old.store(spec, payload)
    bumped = ResultCache(tmp_path, version="2.0")
    assert bumped.load(spec) is None
    # and the old generation is still intact
    assert old.load(spec) == payload


def test_default_version_is_package_version(tmp_path):
    from repro import __version__

    cache = ResultCache(tmp_path)
    assert cache.version == __version__
    assert cache.dir == tmp_path / __version__


def test_corrupt_entry_is_a_miss_then_repaired(tmp_path):
    spec = matmul_spec(ExecutionMode.SIMD, 16, 4)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 1.0})
    path = cache.entry_path(spec)
    path.write_text("{not json")
    assert cache.load(spec) is None
    cache.store(spec, {"cycles": 2.0})
    assert cache.load(spec) == {"cycles": 2.0}


def test_entry_with_wrong_version_field_is_a_miss(tmp_path):
    spec = matmul_spec(ExecutionMode.SIMD, 16, 4)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 1.0})
    path = cache.entry_path(spec)
    entry = json.loads(path.read_text())
    entry["version"] = "0.9"
    path.write_text(json.dumps(entry))
    assert cache.load(spec) is None


def test_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path, version="1.0")
    assert len(cache) == 0
    for m in range(3):
        cache.store(matmul_spec(ExecutionMode.SIMD, 16, 4,
                                added_multiplies=m), {"m": m})
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0
    assert cache.load(matmul_spec(ExecutionMode.SIMD, 16, 4)) is None


def test_env_var_sets_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    cache = ResultCache(version="1.0")
    cache.store(matmul_spec(ExecutionMode.SIMD, 16, 4), {"x": 1})
    assert (tmp_path / "alt").exists()


def test_stored_entry_records_spec_for_inspection(tmp_path):
    spec = matmul_spec(ExecutionMode.MIMD, 64, 4, added_multiplies=9)
    cache = ResultCache(tmp_path, version="1.0")
    cache.store(spec, {"cycles": 5.0})
    entry = json.loads(cache.entry_path(spec).read_text())
    assert entry["spec"] == spec.to_dict()
    assert SimJobSpec.from_dict(entry["spec"]) == spec


# ---------------------------------------------------------------------------
# LRU size cap (--cache-max-mb / $REPRO_CACHE_MAX_MB)
#
# Eviction recency is the sqlite index's last_access column — never the
# file atime, which noatime/relatime mounts freeze or lazily update.
# These tests therefore stamp recency through the store API, and the
# regression test below pins file atimes in the *opposite* order to
# prove the filesystem cannot influence eviction.
# ---------------------------------------------------------------------------
import os  # noqa: E402

from repro.errors import ConfigurationError  # noqa: E402
from repro.exec import resolve_cache_max_bytes  # noqa: E402


def _spec(m):
    return matmul_spec(ExecutionMode.SIMD, 16, 4, added_multiplies=m)


def _set_access(cache, spec, when):
    cache.backend.set_last_access(spec.content_hash, when)


class TestCacheMaxResolution:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "100")
        assert resolve_cache_max_bytes(2) == 2 * 1024 * 1024

    def test_env_fallback_and_unbounded_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert resolve_cache_max_bytes(None) is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.5")
        assert resolve_cache_max_bytes(None) == 512 * 1024

    def test_bad_values_name_their_source(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="--cache-max-mb"):
            resolve_cache_max_bytes("lots")
        with pytest.raises(ConfigurationError, match="positive"):
            resolve_cache_max_bytes(0)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "huge")
        with pytest.raises(ConfigurationError, match="REPRO_CACHE_MAX_MB"):
            resolve_cache_max_bytes(None)


class TestLruEviction:
    def test_store_evicts_oldest_access_first(self, tmp_path):
        """Regression (noatime mounts): eviction follows the index's
        last_access column, touched in a controlled order here, even
        when every file atime says the opposite."""
        cache = ResultCache(tmp_path, version="1.0", max_mb=1)
        for m in range(4):
            cache.store(_spec(m), {"m": m})
        entry_size = cache.entry_path(_spec(0)).stat().st_size
        # Stamp distinct access times: entry 2 oldest, then 0, 1, 3.
        for m, age in ((2, 100), (0, 200), (1, 300), (3, 400)):
            _set_access(cache, _spec(m), age)
        # Adversarial filesystem: atimes claim the REVERSE recency
        # (entry 2 "newest").  A frozen or scrambled atime — what
        # noatime mounts produce — must not change the outcome.
        for m, age in ((2, 4000), (0, 3000), (1, 2000), (3, 1000)):
            os.utime(cache.entry_path(_spec(m)), (age, age))
        # Cap to exactly two entries' worth: the two oldest must go.
        evicted = cache.prune(max_bytes=2 * entry_size)
        assert evicted == 2
        assert cache.load(_spec(2)) is None
        assert cache.load(_spec(0)) is None
        assert cache.load(_spec(1)) == {"m": 1}
        assert cache.load(_spec(3)) == {"m": 3}

    def test_load_refreshes_recency_and_protects_entry(self, tmp_path):
        cache = ResultCache(tmp_path, version="1.0", max_mb=1)
        for m in range(3):
            cache.store(_spec(m), {"m": m})
            _set_access(cache, _spec(m), 100 + m)
        entry_size = cache.entry_path(_spec(0)).stat().st_size
        # A hit on the oldest entry must move it to the young end —
        # via the index column, not os.utime (pin atimes to prove it).
        assert cache.load(_spec(0)) == {"m": 0}
        for m in range(3):
            os.utime(cache.entry_path(_spec(m)), (50, 50))
        assert cache.prune(max_bytes=2 * entry_size) == 1
        assert cache.load(_spec(1)) is None  # now the oldest: evicted
        assert cache.load(_spec(0)) == {"m": 0}

    def test_store_prunes_automatically_under_cap(self, tmp_path):
        spec = _spec(0)
        probe = ResultCache(tmp_path, version="1.0")
        probe.store(spec, {"m": 0})
        entry_size = probe.entry_path(spec).stat().st_size
        probe.clear()
        cap_mb = (2.5 * entry_size) / (1024 * 1024)
        cache = ResultCache(tmp_path, version="1.0", max_mb=cap_mb)
        for m in range(6):
            cache.store(_spec(m), {"m": m})
            _set_access(cache, _spec(m), 100 + m)
        assert cache.size_bytes() <= cache.max_bytes
        assert len(cache) == 2
        # Youngest survivors only.
        assert cache.load(_spec(5)) == {"m": 5}

    def test_prune_spans_versions_and_skips_races(self, tmp_path):
        old = ResultCache(tmp_path, version="0.9")
        new = ResultCache(tmp_path, version="1.0", max_mb=1)
        old.store(_spec(0), {"gen": "old"})
        new.store(_spec(0), {"gen": "new"})
        _set_access(old, _spec(0), 100)  # dead generation, oldest access
        _set_access(new, _spec(0), 200)
        entry_size = new.entry_path(_spec(0)).stat().st_size
        assert new.prune(max_bytes=entry_size) >= 1
        assert old.load(_spec(0)) is None
        assert new.load(_spec(0)) == {"gen": "new"}

    def test_prune_tolerates_corrupt_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path, version="1.0", max_mb=1)
        cache.store(_spec(0), {"m": 0})
        (tmp_path / "1.0" / "garbage.json").write_text("{not json")
        (tmp_path / "README.txt").write_text("not an entry")
        _set_access(cache, _spec(0), 100)
        # Unindexed foreign files fall back to mtime for ordering.
        os.utime(tmp_path / "1.0" / "garbage.json", (50, 50))
        # Corrupt entries are counted, evictable, and never fatal.
        assert cache.size_bytes() > 0
        assert cache.prune(max_bytes=1) >= 1
        assert cache.prune(max_bytes=10 ** 9) == 0  # under cap: no-op

    def test_unbounded_cache_never_prunes(self, tmp_path):
        cache = ResultCache(tmp_path, version="1.0")
        assert cache.max_bytes is None
        for m in range(5):
            cache.store(_spec(m), {"m": m})
        assert cache.prune() == 0
        assert len(cache) == 5

    def test_env_var_bounds_default_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.25")
        cache = ResultCache(tmp_path, version="1.0")
        assert cache.max_bytes == 256 * 1024
