"""Additional MC68000 semantics coverage: signed division, rotate flags,
byte-size operations, EXG pairs, and condition-code corners."""

import pytest

from tests.test_m68k_cpu import run_source


class TestDivision:
    def test_divs_signed_quotient_and_remainder(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #-100,D0
            MOVE.W  #7,D1
            DIVS    D1,D0
            HALT
            """
        )
        # -100 / 7 truncates toward zero: q = -14, r = -2.
        assert cpu.regs.d[0] & 0xFFFF == (-14) & 0xFFFF
        assert (cpu.regs.d[0] >> 16) & 0xFFFF == (-2) & 0xFFFF

    def test_divu_overflow_sets_v_and_preserves_register(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #$00100000,D0
            MOVE.W  #1,D1
            DIVU    D1,D0
            HALT
            """
        )
        assert cpu.regs.ccr.v
        assert cpu.regs.d[0] == 0x0010_0000  # unchanged on overflow

    def test_divide_by_zero_raises(self):
        from repro.errors import IllegalInstructionError

        with pytest.raises(IllegalInstructionError, match="zero"):
            run_source(
                "    MOVE.L #10,D0\n    MOVEQ #0,D1\n    DIVU D1,D0\n    HALT"
            )


class TestRotates:
    def test_rol_wraps_bits(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$8001,D0\n    ROL.W #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0x0003
        assert cpu.regs.ccr.c  # last bit rotated out of the top

    def test_ror_wraps_bits(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$0001,D0\n    ROR.W #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0x8000
        assert cpu.regs.ccr.c

    def test_full_rotation_identity(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$BEEF,D0\n    ROL.W #8,D0\n    ROL.W #8,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0xBEEF

    def test_asr_preserves_sign(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$8000,D0\n    ASR.W #3,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFFFF == 0xF000

    def test_asl_overflow_flag(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$4000,D0\n    ASL.W #1,D0\n    HALT"
        )
        assert cpu.regs.ccr.v  # sign changed during the shift


class TestByteOperations:
    def test_move_b_touches_only_low_byte(self):
        def setup(cpu, bus):
            cpu.regs.d[1] = 0x1234_5678

        cpu, _, _ = run_source("    MOVE.B #$FF,D1\n    HALT", setup=setup)
        assert cpu.regs.d[1] == 0x1234_56FF

    def test_byte_postincrement_steps_by_one(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000
            bus.poke(0x4000, 0xAB, 1)
            bus.poke(0x4001, 0xCD, 1)

        cpu, _, _ = run_source(
            "    MOVE.B (A0)+,D0\n    MOVE.B (A0)+,D1\n    HALT",
            setup=setup,
        )
        assert cpu.regs.d[0] & 0xFF == 0xAB
        assert cpu.regs.d[1] & 0xFF == 0xCD
        assert cpu.regs.a[0] == 0x4002

    def test_byte_flags(self):
        cpu, _, _ = run_source(
            "    MOVE.B #$80,D0\n    TST.B D0\n    HALT"
        )
        assert cpu.regs.ccr.n and not cpu.regs.ccr.z

    def test_add_b_wraps_at_byte(self):
        cpu, _, _ = run_source(
            "    MOVE.B #$FF,D0\n    ADD.B #1,D0\n    HALT"
        )
        assert cpu.regs.d[0] & 0xFF == 0
        assert cpu.regs.ccr.z and cpu.regs.ccr.c


class TestExgAndSwap:
    def test_exg_dd(self):
        def setup(cpu, bus):
            cpu.regs.d[0], cpu.regs.d[1] = 0x11111111, 0x22222222

        cpu, _, _ = run_source("    EXG D0,D1\n    HALT", setup=setup)
        assert cpu.regs.d[0] == 0x22222222
        assert cpu.regs.d[1] == 0x11111111

    def test_exg_aa(self):
        def setup(cpu, bus):
            cpu.regs.a[0], cpu.regs.a[1] = 0xAAAA, 0xBBBB

        cpu, _, _ = run_source("    EXG A0,A1\n    HALT", setup=setup)
        assert cpu.regs.a[0] == 0xBBBB and cpu.regs.a[1] == 0xAAAA

    def test_swap_sets_flags_from_long(self):
        def setup(cpu, bus):
            cpu.regs.d[0] = 0x0000_8000

        cpu, _, _ = run_source("    SWAP D0\n    HALT", setup=setup)
        assert cpu.regs.ccr.n  # 0x80000000 is negative as a long


class TestConditionCorners:
    def test_signed_vs_unsigned_comparison(self):
        """0x8000 is below 0x7FFF signed but above it unsigned."""
        cpu, _, _ = run_source(
            """
            MOVE.W  #$8000,D0
            CMP.W   #$7FFF,D0
            SLT     D1          ; signed less-than -> true
            SHI     D2          ; unsigned higher -> true
            SGE     D3          ; signed >= -> false
            HALT
            """
        )
        assert cpu.regs.d[1] & 0xFF == 0xFF
        assert cpu.regs.d[2] & 0xFF == 0xFF
        assert cpu.regs.d[3] & 0xFF == 0x00

    def test_dbcc_all_conditions_consistent_with_scc(self):
        """DBcc exits when cc is true; Scc records the same cc."""
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            MOVE.W  #50,D1
    loop:   ADDQ.W  #1,D0
            CMP.W   #7,D0
            DBEQ    D1,loop     ; exit when D0 == 7
            SEQ     D2
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 7
        assert cpu.regs.d[2] & 0xFF == 0xFF

    def test_moveq_range(self):
        cpu, _, _ = run_source("    MOVEQ #-128,D0\n    HALT")
        assert cpu.regs.d[0] == 0xFFFF_FF80

    def test_not_affects_nz_only(self):
        cpu, _, _ = run_source(
            "    MOVE.W #$FFFF,D0\n    NOT.W D0\n    HALT"
        )
        assert cpu.regs.ccr.z and not cpu.regs.ccr.c


class TestAddressRegisterRules:
    def test_word_arithmetic_on_areg_uses_full_width(self):
        cpu, _, _ = run_source(
            """
            MOVEA.W #$7FFF,A0
            ADDA.W  #2,A0
            HALT
            """
        )
        # Word source sign-extends; arithmetic is 32-bit: 0x7FFF+2.
        assert cpu.regs.a[0] == 0x8001

    def test_suba_negative_word(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #$10000,A0
            SUBA.W  #1,A0
            HALT
            """
        )
        assert cpu.regs.a[0] == 0xFFFF

    def test_cmpa_sets_flags_from_full_width(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #$10000,A0
            CMPA.W  #0,A0
            SNE     D0
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFF == 0xFF  # 0x10000 != 0 at 32 bits
