"""Tests for the permutation families and admissibility analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.network.permutations import (
    FAMILIES,
    admissibility_survey,
    analyze_permutation,
    bit_reversal,
    butterfly,
    exchange,
    identity,
    matrix_transpose,
    perfect_shuffle,
    shift,
)
from repro.network.topology import ExtraStageCubeTopology

TOPO = ExtraStageCubeTopology(16)


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_every_family_is_a_permutation(self, name):
        mapping = FAMILIES[name](16)
        assert sorted(mapping) == list(range(16))
        assert sorted(mapping.values()) == list(range(16))

    def test_shift_wraps(self):
        assert shift(8, 1)[7] == 0
        assert shift(8, -1)[0] == 7

    def test_exchange(self):
        assert exchange(16, 2)[0] == 4
        with pytest.raises(NetworkError):
            exchange(16, 4)

    def test_bit_reversal_involution(self):
        m = bit_reversal(16)
        assert all(m[m[i]] == i for i in range(16))
        assert m[0b0001] == 0b1000

    def test_perfect_shuffle(self):
        m = perfect_shuffle(16)
        assert m[0b0110] == 0b1100
        assert m[0b1000] == 0b0001

    def test_butterfly_swaps_end_bits(self):
        m = butterfly(16)
        assert m[0b1000] == 0b0001
        assert m[0b1001] == 0b1001  # symmetric endpoints fixed

    def test_transpose(self):
        m = matrix_transpose(16)
        assert m[0b0111] == 0b1101  # (row=01,col=11) -> (row=11,col=01)
        with pytest.raises(NetworkError):
            matrix_transpose(8)  # odd number of address bits


class TestAnalyzer:
    def test_identity_admissible(self):
        report = analyze_permutation(TOPO, identity(16))
        assert report.admissible and report.n_circuits == 16
        assert "admissible" in str(report)

    def test_all_shifts_admissible(self):
        """Uniform shifts — the algorithm's communication pattern — pass
        the cube in one setting for every amount."""
        for amount in range(16):
            report = analyze_permutation(TOPO, shift(16, amount))
            assert report.admissible, f"shift {amount}"

    def test_exchange_admissible(self):
        for bit in range(4):
            assert analyze_permutation(TOPO, exchange(16, bit)).admissible

    def test_blocked_permutation_reports_conflict(self):
        """Some permutation must block the plain cube (it realizes far
        fewer than 16! permutations); the report names the hot link."""
        survey = admissibility_survey(16)
        blocked = [r for r in survey.values() if not r.admissible]
        assert blocked, "expected at least one blocked family"
        report = blocked[0]
        assert report.first_conflict is not None
        assert report.conflicting_pair is not None
        assert "blocked" in str(report)

    def test_extra_stage_strictly_helps(self):
        """Enabling the extra stage never hurts and rescues some families."""
        plain = admissibility_survey(16, extra_stage_enabled=False)
        esc = admissibility_survey(16, extra_stage_enabled=True)
        for name, plain_report in plain.items():
            if plain_report.admissible:
                assert esc[name].admissible, name
        rescued = [
            name for name in plain
            if not plain[name].admissible and esc[name].admissible
        ]
        # The ESC's second path rescues at least one classic family here.
        assert rescued

    @given(st.integers(0, 15))
    @settings(max_examples=16, deadline=None)
    def test_shift_conflict_free_property(self, amount):
        assert analyze_permutation(TOPO, shift(16, amount)).admissible

    def test_survey_covers_families(self):
        survey = admissibility_survey(16)
        assert set(survey) == set(FAMILIES)
