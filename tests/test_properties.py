"""Property-based tests (hypothesis) across the stack.

* random straight-line register programs: the CPU interpreter against a
  plain-Python oracle (values and the Z/N flags);
* assembler round-trips through the listing;
* fetch-unit release rule under random arrival orders;
* network routing under random fault sets;
* timing monotonicity in wait states.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkFaultError
from repro.m68k.assembler import assemble
from repro.m68k.bus import SimpleBus
from repro.m68k.cpu import CPU
from repro.m68k.instructions import Instruction, Size
from repro.m68k.timing import instruction_timing
from repro.m68k.addressing import dreg, imm
from repro.network import ExtraStageCubeTopology, Fault, FaultKind, route
from repro.sim import Environment
from repro.fetch_unit import FetchUnitQueue, QueueItem


# ---------------------------------------------------------------------------
# CPU vs oracle
_REG_OPS = ("ADD", "SUB", "AND", "OR", "EOR", "MOVE")


@st.composite
def straightline_program(draw):
    """A random straight-line register program and its oracle trace."""
    n_instr = draw(st.integers(1, 12))
    lines = []
    ops = []
    for _ in range(n_instr):
        op = draw(st.sampled_from(_REG_OPS))
        src = draw(st.integers(0, 7))
        dst = draw(st.integers(0, 7))
        use_imm = draw(st.booleans())
        value = draw(st.integers(0, 0xFFFF))
        if use_imm:
            lines.append(f"    {op}.W  #{value},D{dst}")
            ops.append((op, ("imm", value), dst))
        else:
            lines.append(f"    {op}.W  D{src},D{dst}")
            ops.append((op, ("reg", src), dst))
    return "\n".join(lines) + "\n    HALT", ops


def oracle(ops):
    """Evaluate the program over 16-bit registers in plain Python."""
    regs = [0] * 8
    z = n = None
    for op, (kind, value), dst in ops:
        src_val = value if kind == "imm" else regs[value]
        if op == "MOVE":
            result = src_val
        elif op == "ADD":
            result = (regs[dst] + src_val) & 0xFFFF
        elif op == "SUB":
            result = (regs[dst] - src_val) & 0xFFFF
        elif op == "AND":
            result = regs[dst] & src_val
        elif op == "OR":
            result = regs[dst] | src_val
        else:
            result = regs[dst] ^ src_val
        regs[dst] = result
        z = result == 0
        n = bool(result & 0x8000)
    return regs, z, n


@given(straightline_program())
@settings(max_examples=150, deadline=None)
def test_cpu_matches_oracle(case):
    source, ops = case
    env = Environment()
    bus = SimpleBus(env)
    prog = assemble(source)
    bus.load_program(prog)
    cpu = CPU(env, bus)
    cpu.reset(pc=prog.entry, sp=0x1F000)
    env.run(until=env.process(cpu.run()))

    want_regs, want_z, want_n = oracle(ops)
    got = [cpu.regs.read_d(i, 2) for i in range(8)]
    assert got == want_regs
    if want_z is not None:
        assert cpu.regs.ccr.z == want_z
        assert cpu.regs.ccr.n == want_n


@given(straightline_program())
@settings(max_examples=50, deadline=None)
def test_elapsed_time_at_least_manual_time(case):
    """Wait states and refresh can only stretch execution."""
    source, _ = case
    env = Environment()
    bus = SimpleBus(env, ws_stream=1, ws_data=1)
    prog = assemble(source)
    bus.load_program(prog)
    cpu = CPU(env, bus)
    cpu.reset(pc=prog.entry, sp=0x1F000)
    cpu.trace = True
    env.run(until=env.process(cpu.run()))
    for rec in cpu.trace_records:
        assert rec.elapsed >= rec.timing.cycles


# ---------------------------------------------------------------------------
# assembler round-trip
@given(straightline_program())
@settings(max_examples=50, deadline=None)
def test_assembler_listing_roundtrip(case):
    """Reassembling a program's own listing reproduces the layout."""
    source, _ = case
    prog = assemble(source)
    relisted = "\n".join(
        f"    {instr}" for instr in prog.instruction_list()
    )
    prog2 = assemble(relisted)
    assert [str(i) for i in prog.instruction_list()] == [
        str(i) for i in prog2.instruction_list()
    ]
    assert [i.encoded_words() for i in prog.instruction_list()] == [
        i.encoded_words() for i in prog2.instruction_list()
    ]


# ---------------------------------------------------------------------------
# fetch unit release rule
@given(
    st.permutations(list(range(4))),
    st.lists(st.integers(0, 50), min_size=4, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_queue_release_at_last_arrival(order, delays):
    """Whatever the arrival order/timing, everyone is released at the
    latest arrival time (the instruction-broadcast rendezvous)."""
    env = Environment()
    queue = FetchUnitQueue(env, 16)
    queue.try_enqueue(
        QueueItem(Instruction("NOP"), 1, frozenset(range(4)))
    )
    release_times = {}

    def pe(slot, delay):
        yield env.timeout(delay)
        yield from queue.request(slot)
        release_times[slot] = env.now

    for slot, delay in zip(order, delays):
        env.process(pe(slot, delay))
    env.run()
    assert set(release_times) == set(range(4))
    assert set(release_times.values()) == {max(delays)}


# ---------------------------------------------------------------------------
# network routing under faults
@given(
    st.integers(0, 15),
    st.integers(0, 15),
    st.sets(
        st.tuples(st.integers(1, 3), st.integers(0, 15)), max_size=1
    ),
)
@settings(max_examples=100, deadline=None)
def test_esc_single_fault_tolerance(src, dst, fault_specs):
    """Any single interior box fault leaves every pair routable with the
    extra stage enabled, and the resulting path never touches the fault."""
    topo = ExtraStageCubeTopology(16)
    faults = {
        Fault(FaultKind.BOX, *topo.box_of(stage, line))
        for stage, line in fault_specs
    }
    path = route(topo, src, dst, faults=faults, extra_stage_enabled=True)
    assert path.lines[0] == src and path.lines[-1] == dst
    used = {topo.box_of(s, path.lines[s]) for s in range(topo.n_stages)}
    for fault in faults:
        assert (fault.stage, fault.line) not in used


@given(
    st.integers(0, 15),
    st.integers(0, 15),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 15)), max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_route_never_returns_faulty_path(src, dst, link_specs):
    """route() either finds a clean path or raises — never a dirty one."""
    topo = ExtraStageCubeTopology(16)
    faults = {Fault(FaultKind.LINK, s, l) for s, l in link_specs}
    try:
        path = route(topo, src, dst, faults=faults, extra_stage_enabled=True)
    except NetworkFaultError:
        return
    for link in path.output_links():
        assert Fault(FaultKind.LINK, *link) not in faults


# ---------------------------------------------------------------------------
# timing monotonicity
@given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 0xFFFF))
@settings(max_examples=80, deadline=None)
def test_wait_states_monotone(ws_a, ws_b, multiplier):
    instr = Instruction("MULU", Size.WORD, (dreg(0), dreg(1)))
    t = instruction_timing(instr, src_value=multiplier)
    if ws_a <= ws_b:
        assert t.with_wait_states(ws_a, ws_a) <= t.with_wait_states(ws_b, ws_b)


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
@settings(max_examples=80, deadline=None)
def test_mulu_cycles_bounds_and_monotone_in_popcount(a, b):
    from repro.m68k.timing import mulu_cycles

    ca, cb = mulu_cycles(a), mulu_cycles(b)
    assert 38 <= ca <= 70 and 38 <= cb <= 70
    if bin(a).count("1") <= bin(b).count("1"):
        assert ca <= cb
