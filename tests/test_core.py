"""Tests for the core API: equations, metrics, study facade, crossover."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    DecouplingStudy,
    decoupling_benefit_per_multiply,
    efficiency,
    find_crossover,
    mimd_time,
    simd_time,
    speedup,
    t_mimd_never_exceeds_t_simd,
)
from repro.core.equations import decoupling_gain
from repro.errors import ConfigurationError
from repro.machine import ExecutionMode, PrototypeConfig


class TestEquations:
    def test_simd_sums_row_maxima(self):
        t = np.array([[1, 5], [2, 2]])
        assert simd_time(t) == 7

    def test_mimd_takes_worst_column(self):
        t = np.array([[1, 5], [2, 2]])
        assert mimd_time(t) == 7  # PE1: 5+2
        t2 = np.array([[1, 5], [4, 2]])
        assert mimd_time(t2) == 7  # both columns sum to 5/7

    def test_identical_pes_equal(self):
        t = np.tile([[3.0], [4.0]], (1, 8))
        assert simd_time(t) == mimd_time(t) == 7.0

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 20), st.integers(1, 8)),
            elements=st.floats(0, 100, allow_nan=False),
        )
    )
    @settings(max_examples=200)
    def test_inequality_property(self, times):
        """The paper's 'in general, T_MIMD <= T_SIMD' holds always."""
        assert t_mimd_never_exceeds_t_simd(times)

    def test_gain_nonnegative(self):
        rng = np.random.default_rng(3)
        t = rng.exponential(10, size=(50, 4))
        assert decoupling_gain(t) >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simd_time(np.ones(3))
        with pytest.raises(ValueError):
            mimd_time(-np.ones((2, 2)))


class TestMetrics:
    def test_speedup(self):
        assert speedup(100, 25) == 4.0

    def test_efficiency(self):
        assert efficiency(100, 25, 4) == 1.0
        assert efficiency(100, 20, 4) == 1.25  # superlinear

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0, 10)
        with pytest.raises(ValueError):
            efficiency(10, 10, 0)


class TestStudy:
    def test_micro_runs_verify_product(self):
        study = DecouplingStudy()
        res = study.run(ExecutionMode.SIMD, 8, 4, engine="micro")
        assert res.verified and res.engine == "micro"

    def test_auto_engine_selection(self):
        study = DecouplingStudy(micro_threshold=8)
        small = study.run(ExecutionMode.SERIAL, 8, 1)
        big = study.run(ExecutionMode.SERIAL, 16, 1)
        assert small.engine == "micro"
        assert big.engine == "macro"

    def test_caching(self):
        study = DecouplingStudy()
        a = study.run(ExecutionMode.SERIAL, 8, 1, engine="macro")
        b = study.run(ExecutionMode.SERIAL, 8, 1, engine="macro")
        assert a is b

    def test_engines_agree(self):
        study = DecouplingStudy()
        micro = study.run(ExecutionMode.SMIMD, 16, 4, engine="micro")
        macro = study.run(ExecutionMode.SMIMD, 16, 4, engine="macro")
        assert macro.cycles == pytest.approx(micro.cycles, rel=0.02)

    def test_efficiency_helper(self):
        study = DecouplingStudy()
        eff = study.efficiency(ExecutionMode.SIMD, 16, 4, engine="micro")
        assert 0.5 < eff < 1.2

    def test_serial_with_wrong_p_rejected(self):
        study = DecouplingStudy()
        with pytest.raises(ConfigurationError):
            study.run(ExecutionMode.SERIAL, 8, 4)

    def test_unknown_engine_rejected(self):
        study = DecouplingStudy()
        with pytest.raises(ConfigurationError):
            study.run(ExecutionMode.SIMD, 8, 4, engine="quantum")

    def test_breakdown_present(self):
        study = DecouplingStudy()
        res = study.run(ExecutionMode.MIMD, 8, 4, engine="macro")
        assert {"mult", "comm", "control", "other"} <= set(res.breakdown)
        assert sum(res.breakdown.values()) == pytest.approx(res.cycles)


class TestCrossover:
    def test_paper_crossover_band(self):
        """The headline result: T_SIMD = T_S/MIMD at ≈14 added multiplies
        for n=64, p=4 (the paper's plotted points span 13–15)."""
        study = DecouplingStudy()
        result = find_crossover(study, n=64, p=4)
        assert result.found
        assert 12.0 <= result.crossover <= 16.0

    def test_sweep_monotone_difference(self):
        """SIMD's lead shrinks monotonically with added multiplies."""
        study = DecouplingStudy()
        result = find_crossover(study, n=64, p=4)
        diffs = [t2 - t1 for _, t1, t2 in result.sweep]
        assert all(b < a for a, b in zip(diffs, diffs[1:]))

    def test_no_crossover_at_tiny_n(self):
        """With few columns per PE (n=8, p=4 ⇒ 2), the per-step barrier
        re-coupling cancels the decoupling benefit: SIMD stays ahead no
        matter how many multiplies are added.  (The paper measured its
        crossover at n=64, where each PE holds 16 columns.)  Verified on
        the exact micro engine."""
        study = DecouplingStudy()
        result = find_crossover(
            study, n=8, p=4, engine="micro", max_multiplies=12
        )
        assert not result.found
        diffs = [t2 - t1 for _, t1, t2 in result.sweep]
        assert all(d > 0 for d in diffs)

    def test_not_found_reported(self):
        study = DecouplingStudy()
        result = find_crossover(study, n=64, p=4, max_multiplies=2)
        assert not result.found

    def test_benefit_formula(self):
        # More PEs -> bigger max gap -> bigger benefit.
        b4 = decoupling_benefit_per_multiply(8, 4)
        b16 = decoupling_benefit_per_multiply(8, 16)
        assert b16 > b4 > 0
        # One PE: no max effect; the fetch penalty makes decoupling lose.
        assert decoupling_benefit_per_multiply(8, 1) < 0
