"""Machine-level integration tests: each execution mode end to end on
small hand-written programs."""

import pytest

from repro.m68k.assembler import assemble, AssembledProgram
from repro.m68k.instructions import Instruction
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.mc import EnqueueBlock, Loop, SetMask


CFG = PrototypeConfig()


def asm(source: str) -> AssembledProgram:
    return assemble(source, predefined=CFG.device_symbols())


def block(source: str) -> list[Instruction]:
    """Assemble a straight-line SIMD block."""
    return assemble(source, predefined=CFG.device_symbols()).instruction_list()


class TestSerial:
    def test_serial_run(self):
        m = PASMMachine(CFG, partition_size=1)
        prog = asm(
            """
            MOVEQ   #0,D0
            MOVE.W  #99,D1
    loop:   ADDQ.W  #1,D0
            DBRA    D1,loop
            MOVE.W  D0,$4000
            HALT
            """
        )
        result = m.run_serial(prog)
        assert result.mode is ExecutionMode.SERIAL
        assert m.pe(0).memory.read(0x4000, 2) == 100
        assert result.cycles > 0
        assert result.seconds == pytest.approx(result.cycles / 8e6)

    def test_serial_pays_main_memory_wait_states(self):
        src = "    NOP\n    NOP\n    NOP\n    HALT"
        fast_cfg = CFG.with_overrides(
            ws_main=0, refresh=CFG.refresh.__class__(250, 0)
        )
        slow_cfg = CFG.with_overrides(
            ws_main=1, refresh=CFG.refresh.__class__(250, 0)
        )
        r_fast = PASMMachine(fast_cfg, 1).run_serial(asm(src))
        r_slow = PASMMachine(slow_cfg, 1).run_serial(asm(src))
        assert r_slow.cycles - r_fast.cycles == 4  # one ws per stream word


class TestMIMD:
    def test_pes_run_asynchronously(self):
        m = PASMMachine(CFG, partition_size=4)
        programs = []
        for lp in range(4):
            # PE lp loops lp+1 times: different finish times.
            programs.append(
                asm(
                    f"""
            MOVEQ   #0,D0
            MOVE.W  #{lp},D1
    loop:   ADDQ.W  #1,D0
            DBRA    D1,loop
            MOVE.W  D0,$4000
            HALT
            """
                )
            )
        result = m.run_mimd(programs)
        assert result.mode is ExecutionMode.MIMD
        for lp in range(4):
            assert m.pe(lp).memory.read(0x4000, 2) == lp + 1
        finishes = [result.per_pe_cycles[lp] for lp in range(4)]
        assert finishes == sorted(finishes)
        assert result.cycles == pytest.approx(max(finishes))

    def test_network_transfer_with_polling(self):
        """Logical PE i sends a word to PE (i-1) mod p using status-register
        polling — the pure-MIMD protocol of Section 5.2."""
        m = PASMMachine(CFG, partition_size=4)
        m.connect_shift_circuit()
        programs = []
        for lp in range(4):
            programs.append(
                asm(
                    f"""
            ; send my id+100 as two bytes (low, high), polling TX_READY
            MOVE.W  #{100 + lp},D0
    txpoll1: MOVE.W  NETSTAT,D2
            AND.W   #1,D2
            BEQ     txpoll1
            MOVE.B  D0,NETTX
            LSR.W   #8,D0
    txpoll2: MOVE.W  NETSTAT,D2
            AND.W   #1,D2
            BEQ     txpoll2
            MOVE.B  D0,NETTX
            ; receive two bytes, polling RX_VALID
    rxpoll1: MOVE.W  NETSTAT,D2
            AND.W   #2,D2
            BEQ     rxpoll1
            MOVE.B  NETRX,D3
    rxpoll2: MOVE.W  NETSTAT,D2
            AND.W   #2,D2
            BEQ     rxpoll2
            MOVE.B  NETRX,D4
            LSL.W   #8,D4
            OR.W    D4,D3
            MOVE.W  D3,$4000
            HALT
            """
                )
            )
        m.run_mimd(programs)
        for lp in range(4):
            sender = (lp + 1) % 4
            assert m.pe(lp).memory.read(0x4000, 2) == 100 + sender


class TestSIMD:
    def test_broadcast_block_executes_on_all_pes(self):
        m = PASMMachine(CFG, partition_size=4)
        blocks = {
            "body": block("    ADDQ.W #1,D0"),
            "fini": block("    MOVE.W D0,$4000\n    HALT"),
        }
        mc_program = [
            Loop(10, (EnqueueBlock("body"),)),
            EnqueueBlock("fini"),
        ]
        result = m.run_simd(mc_program, blocks)
        assert result.mode is ExecutionMode.SIMD
        for lp in range(4):
            assert m.pe(lp).memory.read(0x4000, 2) == 10
        # Every PE fetched every broadcast word.
        stats = result.queue_stats[0]
        assert stats["releases"] == 10 + 2

    def test_simd_instruction_released_at_max(self):
        """A data-dependent MULU broadcast completes at the slowest PE's
        pace: per-instruction max-coupling."""
        cfg = CFG.with_overrides(refresh=CFG.refresh.__class__(250, 0))

        def run(multipliers):
            m = PASMMachine(cfg, partition_size=4)
            data_programs = []
            for lp in range(4):
                data_programs.append(
                    asm(f"    HALT\n    .data\n    .org $4000\nmul: .dc.w {multipliers[lp]}")
                )
            blocks = {
                "init": block("    MOVE.W $4000,D1"),
                "body": block("    MULU D1,D2"),
                "fini": block("    HALT"),
            }
            mc_program = [
                EnqueueBlock("init"),
                Loop(50, (EnqueueBlock("body"),)),
                EnqueueBlock("fini"),
            ]
            return m.run_simd(mc_program, blocks, data_programs=data_programs)

        slow_everywhere = run([0xFFFF] * 4)  # every PE multiplies slowly
        one_slow = run([0, 0, 0, 0xFFFF])  # only one slow PE
        all_fast = run([0] * 4)
        # One slow PE costs (nearly) as much as all slow: max-coupling.
        assert one_slow.cycles == pytest.approx(slow_everywhere.cycles, rel=0.01)
        # And clearly more than all-fast: 50 muls * 32 extra cycles.
        assert slow_everywhere.cycles - all_fast.cycles == pytest.approx(
            50 * 32, abs=2
        )

    def test_simd_multi_mc_groups(self):
        m = PASMMachine(CFG, partition_size=8)
        blocks = {
            "body": block("    ADDQ.W #1,D0"),
            "fini": block("    MOVE.W D0,$4000\n    HALT"),
        }
        result = m.run_simd(
            [Loop(5, (EnqueueBlock("body"),)), EnqueueBlock("fini")], blocks
        )
        for lp in range(8):
            assert m.pe(lp).memory.read(0x4000, 2) == 5
        assert set(result.queue_stats) == {0, 1}

    def test_simd_mask_disables_pes(self):
        m = PASMMachine(CFG, partition_size=4)
        blocks = {
            "evens": block("    ADDQ.W #1,D0"),
            "fini": block("    MOVE.W D0,$4000\n    HALT"),
        }
        mc_program = [
            SetMask((0, 2)),
            EnqueueBlock("evens"),
            SetMask((0, 1, 2, 3)),
            EnqueueBlock("fini"),
        ]
        m.run_simd(mc_program, blocks)
        assert [m.pe(lp).memory.read(0x4000, 2) for lp in range(4)] == [1, 0, 1, 0]

    def test_control_flow_overlaps_pe_computation(self):
        """With a long-running PE body, MC loop overhead hides completely:
        the run takes (body time) * iterations, not (body + MC loop) *
        iterations."""
        cfg = CFG.with_overrides(refresh=CFG.refresh.__class__(250, 0))
        m = PASMMachine(cfg, partition_size=4)
        data = [asm("    HALT\n    .data\n    .org $4000\nv: .dc.w $FFFF")] * 4
        blocks = {
            "init": block("    MOVE.W $4000,D1"),
            "body": block("    MULU D1,D2"),  # 70 cycles + fetch
            "fini": block("    HALT"),
        }
        iters = 40
        result = m.run_simd(
            [EnqueueBlock("init"), Loop(iters, (EnqueueBlock("body"),)),
             EnqueueBlock("fini")],
            blocks,
            data_programs=data,
        )
        # Body: MULU #$FFFF multiplier = 70 cycles total (its one queue-word
        # fetch included).  MC per-iteration cost (~25 cycles) must hide.
        expected_floor = iters * 70
        assert result.cycles >= expected_floor
        assert result.cycles <= expected_floor + 250  # startup slack only


class TestSMIMD:
    def test_barrier_synchronizes_groups(self):
        m = PASMMachine(CFG, partition_size=4)
        programs = []
        for lp in range(4):
            # Different-length preambles, then a barrier, then store the
            # barrier exit time ordering proxy: a counter incremented after.
            programs.append(
                asm(
                    f"""
            MOVE.W  #{lp * 40},D1
            TST.W   D1
            BEQ     bar
    spin:   SUBQ.W  #1,D1
            BNE     spin
    bar:    MOVE.W  SIMDSPACE,D0   ; barrier read
            MOVE.W  TIMER,D2
            MOVE.W  D2,$4000
            HALT
            """
                )
            )
        result = m.run_smimd(programs, sync_words=1)
        assert result.mode is ExecutionMode.SMIMD
        times = [m.pe(lp).memory.read(0x4000, 2) for lp in range(4)]
        # All PEs passed the barrier within a few cycles of each other
        # (the barrier read itself costs a fetch), despite skew of ~3000.
        assert max(times) - min(times) <= 16

    def test_multiple_barriers_in_order(self):
        m = PASMMachine(CFG, partition_size=4)
        programs = [
            asm(
                """
            MOVEQ   #0,D0
            MOVE.W  #4,D3
    loop:   MOVE.W  SIMDSPACE,D1
            ADDQ.W  #1,D0
            SUBQ.W  #1,D3
            BNE     loop
            MOVE.W  D0,$4000
            HALT
            """
            )
            for _ in range(4)
        ]
        m.run_smimd(programs, sync_words=4)
        for lp in range(4):
            assert m.pe(lp).memory.read(0x4000, 2) == 4

    def test_sync_words_beyond_queue_capacity(self):
        """More barriers than the queue holds: the feeder keeps topping up."""
        cfg = CFG.with_overrides(queue_capacity_words=8)
        m = PASMMachine(cfg, partition_size=4)
        n_barriers = 40
        programs = [
            asm(
                f"""
            MOVE.W  #{n_barriers - 1},D3
    loop:   MOVE.W  SIMDSPACE,D1
            DBRA    D3,loop
            HALT
            """
            )
            for _ in range(4)
        ]
        result = m.run_smimd(programs, sync_words=n_barriers)
        assert result.queue_stats[0]["releases"] == n_barriers

    def test_smimd_network_transfer_without_polling(self):
        """After a barrier, transfers are plain moves (no status polling) —
        the S/MIMD protocol of Section 5.3."""
        m = PASMMachine(CFG, partition_size=4)
        m.connect_shift_circuit()
        programs = []
        for lp in range(4):
            programs.append(
                asm(
                    f"""
            MOVE.W  #{200 + lp},D0
            MOVE.W  SIMDSPACE,D7   ; barrier: everyone ready
            MOVE.B  D0,NETTX
            LSR.W   #8,D0
            MOVE.B  D0,NETTX
            MOVE.B  NETRX,D3
            MOVE.B  NETRX,D4
            LSL.W   #8,D4
            OR.W    D4,D3
            MOVE.W  D3,$4000
            HALT
            """
                )
            )
        m.run_smimd(programs, sync_words=1)
        for lp in range(4):
            sender = (lp + 1) % 4
            assert m.pe(lp).memory.read(0x4000, 2) == 200 + sender
