"""Tests for the pasm-run program runner."""

import pytest

from repro.tools.runner import ProgramRunError, main, run_program_file


SERIAL_SRC = """
        MOVEQ   #0,D0
        MOVE.W  #9,D1
loop:   ADDQ.W  #1,D0
        DBRA    D1,loop
        MOVE.W  D0,$4000
        HALT
"""

PEID_SRC = """
        MOVE.W  #PEID,D0
        ADD.W   #100,D0
        MOVE.W  D0,$4000
        HALT
"""

RING_SRC = """
        MOVE.W  #PEID,D0
        MOVE.W  SIMDSPACE,D7    ; barrier
        MOVE.B  D0,NETTX
        LSR.W   #8,D0
        MOVE.B  D0,NETTX
        MOVE.B  NETRX,D3
        MOVE.B  NETRX,D4
        LSL.W   #8,D4
        MOVE.B  D3,D4
        MOVE.W  D4,$4000
        HALT
"""


@pytest.fixture
def program(tmp_path):
    def write(source):
        path = tmp_path / "prog.s"
        path.write_text(source)
        return path

    return write


def test_serial_run_and_dump(program):
    outcome = run_program_file(program(SERIAL_SRC), dump=["0x4000:1"])
    assert outcome.dumps[0][0x4000] == [10]
    assert outcome.result.cycles > 0


def test_peid_symbol_differs_per_pe(program):
    outcome = run_program_file(
        program(PEID_SRC), mode="mimd", p=4, dump=["0x4000:1"]
    )
    assert [outcome.dumps[lp][0x4000][0] for lp in range(4)] == [
        100, 101, 102, 103
    ]


def test_smimd_ring_exchange(program):
    outcome = run_program_file(
        program(RING_SRC), mode="smimd", p=4, sync_words=1,
        dump=["0x4000:1"],
    )
    for lp in range(4):
        assert outcome.dumps[lp][0x4000][0] == (lp + 1) % 4


def test_registers_snapshot(program):
    outcome = run_program_file(program(SERIAL_SRC), show_registers=True)
    assert outcome.registers[0]["D0"] & 0xFFFF == 10


def test_max_cycles_budget(program):
    with pytest.raises(ProgramRunError, match="over the"):
        run_program_file(program(SERIAL_SRC), max_cycles=10)


def test_simd_mode_rejected(program):
    with pytest.raises(ProgramRunError, match="SIMD"):
        run_program_file(program(SERIAL_SRC), mode="simd")


def test_unknown_mode_rejected(program):
    with pytest.raises(ProgramRunError, match="unknown mode"):
        run_program_file(program(SERIAL_SRC), mode="warp")


def test_serial_with_p_rejected(program):
    with pytest.raises(ProgramRunError, match="one PE"):
        run_program_file(program(SERIAL_SRC), p=4)


def test_bad_dump_spec(program):
    with pytest.raises(ProgramRunError, match="dump"):
        run_program_file(program(SERIAL_SRC), dump=["zzz"])


def test_cli_main(program, capsys):
    path = program(SERIAL_SRC)
    rc = main([str(path), "--dump", "0x4000:1", "--registers"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PE0 @0x4000: 000A" in out
    assert "cycles=" in out


def test_cli_error_reporting(program, capsys):
    path = program(SERIAL_SRC)
    rc = main([str(path), "--max-cycles", "5"])
    assert rc == 1
    assert "pasm-run:" in capsys.readouterr().err


def test_render_contains_breakdown(program):
    outcome = run_program_file(program(SERIAL_SRC))
    text = outcome.render()
    assert "breakdown" in text and "mode=serial" in text


def test_cli_listing_flag(program, capsys):
    path = program(RING_SRC)
    rc = main([str(path), "--listing"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "NETTX" in out and "cyc" in out


def test_cli_listing_reports_assembly_errors(program, capsys):
    path = program("    FROB D0")
    rc = main([str(path), "--listing"])
    assert rc == 1
    assert "pasm-run:" in capsys.readouterr().err
