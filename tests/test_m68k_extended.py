"""Tests for the extended MC68000 subset: bit operations, Scc, CMPM,
ADDX/SUBX/NEGX chains, rotates through X, PEA/LINK/UNLK, MOVEM, TAS."""

import pytest

from repro.m68k.addressing import Mode, Operand, areg, dreg, imm
from repro.m68k.assembler import assemble
from repro.m68k.instructions import Instruction, Size
from repro.m68k.timing import instruction_timing

from tests.test_m68k_cpu import run_source


def ind(n):
    return Operand(Mode.IND, reg=n)


class TestBitOps:
    def test_btst_sets_z_from_bit(self):
        cpu, _, _ = run_source(
            """
            MOVE.L  #%1000,D0
            BTST    #3,D0
            SEQ     D1          ; Z clear (bit was set) -> D1 = 0
            BTST    #2,D0
            SNE     D2          ; Z set (bit clear) -> D2 = 0
            HALT
            """
        )
        assert cpu.regs.d[1] & 0xFF == 0
        assert cpu.regs.d[2] & 0xFF == 0

    def test_bset_bclr_bchg_on_register(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            BSET    #5,D0
            BSET    #31,D0
            BCLR    #5,D0
            BCHG    #0,D0
            HALT
            """
        )
        assert cpu.regs.d[0] == (1 << 31) | 1

    def test_bit_number_from_register_mod_32(self):
        cpu, _, _ = run_source(
            """
            MOVEQ   #0,D0
            MOVE.W  #33,D1      ; 33 mod 32 = 1
            BSET    D1,D0
            HALT
            """
        )
        assert cpu.regs.d[0] == 2

    def test_memory_bitops_are_byte_wide_mod_8(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #$00FF,$4000
            BCLR    #0,$4000     ; operates on the byte at $4000 = $00
            BSET    #10,$4001    ; 10 mod 8 = 2 on the byte at $4001
            HALT
            """
        )
        assert bus.peek(0x4000, 1) == 0x00
        assert bus.peek(0x4001, 1) == 0xFF  # bit 2 already set

    def test_btst_timing(self):
        t = instruction_timing(Instruction("BTST", None, (dreg(0), dreg(1))))
        assert (t.cycles, t.stream_words) == (6, 1)
        t = instruction_timing(
            Instruction("BTST", Size.BYTE, (imm(3), dreg(1)))
        )
        assert (t.cycles, t.stream_words) == (10, 2)

    def test_bclr_register_timing(self):
        t = instruction_timing(Instruction("BCLR", None, (dreg(0), dreg(1))))
        assert t.cycles == 10


class TestScc:
    def test_all_conditions_set_or_clear(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #5,D0
            CMP.W   #5,D0
            SEQ     D1          ; true  -> $FF
            SNE     D2          ; false -> $00
            SGE     D3          ; 5 >= 5 -> $FF
            HALT
            """
        )
        assert cpu.regs.d[1] & 0xFF == 0xFF
        assert cpu.regs.d[2] & 0xFF == 0x00
        assert cpu.regs.d[3] & 0xFF == 0xFF

    def test_scc_memory(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #1,D0
            TST.W   D0
            SNE     $4000
            HALT
            """
        )
        assert bus.peek(0x4000, 1) == 0xFF

    def test_scc_only_touches_low_byte(self):
        def setup(cpu, bus):
            cpu.regs.d[1] = 0x1234_5678

        cpu, _, _ = run_source(
            "    MOVEQ #0,D0\n    TST.W D0\n    SEQ D1\n    HALT",
            setup=setup,
        )
        assert cpu.regs.d[1] == 0x1234_56FF

    def test_scc_timing_true_vs_false(self):
        st = Instruction("ST", Size.BYTE, (dreg(0),))
        assert instruction_timing(st, branch_taken=True).cycles == 6
        assert instruction_timing(st, branch_taken=False).cycles == 4


class TestCmpmAndExtended:
    def test_cmpm_compares_and_advances(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #7,$4000
            MOVE.W  #7,$4100
            LEA     $4000,A0
            LEA     $4100,A1
            CMPM    (A0)+,(A1)+
            SEQ     D3
            HALT
            """
        )
        assert cpu.regs.d[3] & 0xFF == 0xFF
        assert cpu.regs.a[0] == 0x4002 and cpu.regs.a[1] == 0x4102

    def test_addx_chain_32bit_via_16bit(self):
        """Add two 32-bit numbers with 16-bit ADD/ADDX (the classic use)."""
        a, b = 0x0001_FFFF, 0x0000_0001
        cpu, _, _ = run_source(
            f"""
            MOVE.W  #{a & 0xFFFF},D0        ; a low
            MOVE.W  #{a >> 16},D1           ; a high
            MOVE.W  #{b & 0xFFFF},D2        ; b low
            MOVE.W  #{b >> 16},D3           ; b high
            ADD.W   D2,D0                   ; low halves (sets X)
            ADDX.W  D3,D1                   ; high halves + carry
            HALT
            """
        )
        result = ((cpu.regs.d[1] & 0xFFFF) << 16) | (cpu.regs.d[0] & 0xFFFF)
        assert result == a + b

    def test_subx_borrow(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #0,D0
            MOVE.W  #1,D1
            SUB.W   D1,D0       ; 0-1: borrow, X set
            MOVE.W  #5,D2
            MOVE.W  #2,D3
            SUBX.W  D3,D2       ; 5-2-1 = 2
            HALT
            """
        )
        assert cpu.regs.d[2] & 0xFFFF == 2

    def test_addx_memory_form(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #$FFFF,$4000
            MOVE.W  #$0001,$4100
            LEA     $4002,A0
            LEA     $4102,A1
            ADD.W   D7,D7       ; clear X (0+0)
            ADDX.W  -(A0),-(A1)
            HALT
            """
        )
        assert bus.peek(0x4100, 2) == 0x0000  # FFFF + 1 wraps
        assert bus.peek(0x4000, 2) == 0xFFFF  # source unchanged

    def test_negx(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #1,D0
            SUB.W   #2,D0       ; sets X (borrow)
            MOVE.W  #10,D1
            NEGX.W  D1          ; -(10) - 1 = -11
            HALT
            """
        )
        assert cpu.regs.d[1] & 0xFFFF == (-11) & 0xFFFF

    def test_cmpm_timing(self):
        t = instruction_timing(
            Instruction("CMPM", Size.WORD,
                        (Operand(Mode.POSTINC, reg=0),
                         Operand(Mode.POSTINC, reg=1)))
        )
        assert t.cycles == 12 and t.data_reads == 2

    def test_addx_timing(self):
        reg = Instruction("ADDX", Size.WORD, (dreg(0), dreg(1)))
        assert instruction_timing(reg).cycles == 4
        mem = Instruction(
            "ADDX", Size.WORD,
            (Operand(Mode.PREDEC, reg=0), Operand(Mode.PREDEC, reg=1)),
        )
        t = instruction_timing(mem)
        assert (t.cycles, t.data_reads, t.data_writes) == (18, 2, 1)


class TestRotatesThroughX:
    def test_roxl_inserts_x(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #$FFFF,D0
            ADD.W   D0,D0       ; sets X (carry out)
            MOVE.W  #0,D1
            ROXL.W  #1,D1       ; rotates X into bit 0
            HALT
            """
        )
        assert cpu.regs.d[1] & 0xFFFF == 1

    def test_roxr_full_cycle_restores(self):
        """17 ROXR steps (16 bits + X) restore the original word."""
        cpu, _, _ = run_source(
            """
            ADD.W   D7,D7       ; X := 0
            MOVE.W  #$1234,D0
            ROXR.W  #8,D0
            ROXR.W  #8,D0
            ROXR.W  #1,D0
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 0x1234

    def test_roxl_timing_matches_shift_family(self):
        t = instruction_timing(
            Instruction("ROXL", Size.WORD, (imm(4), dreg(0))), shift_count=4
        )
        assert t.cycles == 6 + 8


class TestStackOps:
    def test_pea_pushes_effective_address(self):
        def setup(cpu, bus):
            cpu.regs.a[0] = 0x4000

        cpu, bus, _ = run_source("    PEA 8(A0)\n    HALT", setup=setup)
        assert bus.peek(cpu.regs.sp, 4) == 0x4008

    def test_link_unlk_frame(self):
        cpu, bus, _ = run_source(
            """
            MOVE.L  #$AABBCCDD,A6
            LINK    A6,#-8
            MOVE.W  #42,-4(A6)      ; a local variable
            MOVE.W  -4(A6),D0
            UNLK    A6
            HALT
            """
        )
        assert cpu.regs.d[0] & 0xFFFF == 42
        assert cpu.regs.a[6] == 0xAABB_CCDD  # restored
        assert cpu.regs.sp == 0x1_F000 - 4 + 4  # back to initial

    def test_pea_timing(self):
        t = instruction_timing(Instruction("PEA", None, (ind(0),)))
        assert (t.cycles, t.data_writes) == (12, 2)
        t = instruction_timing(
            Instruction("PEA", None, (Operand(Mode.ABS_L, value=0x1000),))
        )
        assert t.cycles == 20

    def test_link_unlk_timing(self):
        link = Instruction("LINK", None, (areg(6), imm(-8)))
        assert instruction_timing(link).cycles == 16
        unlk = Instruction("UNLK", None, (areg(6),))
        assert instruction_timing(unlk).cycles == 12


class TestMovem:
    def test_store_and_reload_roundtrip(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #1,D0
            MOVE.W  #2,D1
            MOVE.W  #3,D2
            MOVEA.W #$4000,A0
            MOVEM.W D0-D2,-(SP)
            CLR.W   D0
            CLR.W   D1
            CLR.W   D2
            MOVEM.W (SP)+,D0-D2
            HALT
            """
        )
        assert [cpu.regs.d[i] & 0xFFFF for i in range(3)] == [1, 2, 3]
        assert cpu.regs.sp == 0x1_F000  # balanced

    def test_predec_stores_descending(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #$AAAA,D0
            MOVE.L  #$BBBB,A3
            LEA     $4008,A1
            MOVEM.W D0/A3,-(A1)
            HALT
            """
        )
        # A3 stored first (descending), so memory order is D0 then A3.
        assert bus.peek(0x4004, 2) == 0xAAAA
        assert bus.peek(0x4006, 2) == 0xBBBB
        assert cpu.regs.a[1] == 0x4004

    def test_load_from_static_address(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #7,$4000
            MOVE.W  #8,$4002
            MOVEM.W $4000,D5-D6
            HALT
            """
        )
        assert cpu.regs.d[5] & 0xFFFF == 7
        assert cpu.regs.d[6] & 0xFFFF == 8

    def test_word_load_sign_extends(self):
        cpu, _, _ = run_source(
            """
            MOVE.W  #$8000,$4000
            MOVEM.W $4000,D4
            HALT
            """
        )
        assert cpu.regs.d[4] == 0xFFFF_8000

    def test_long_form(self):
        cpu, bus, _ = run_source(
            """
            MOVE.L  #$12345678,D0
            MOVE.L  #$9ABCDEF0,D1
            MOVEM.L D0-D1,-(SP)
            MOVEM.L (SP)+,D6-D7
            HALT
            """
        )
        assert cpu.regs.d[6] == 0x1234_5678
        assert cpu.regs.d[7] == 0x9ABC_DEF0

    def test_movem_timing_word_store(self):
        instr = assemble(
            "    MOVEM.W D0-D3,-(SP)"
        ).instruction_list()[0]
        t = instruction_timing(instr)
        assert t.cycles == 8 + 4 * 4
        assert t.data_writes == 4

    def test_movem_timing_word_load(self):
        instr = assemble("    MOVEM.W (SP)+,D0-D3").instruction_list()[0]
        t = instruction_timing(instr)
        assert t.cycles == 12 + 4 * 4
        assert t.data_reads == 4

    def test_reg_list_parsing(self):
        instr = assemble("    MOVEM.W D0-D2/A0/A5-A6,-(SP)").instruction_list()[0]
        assert instr.reg_list == (
            ("D", 0), ("D", 1), ("D", 2), ("A", 0), ("A", 5), ("A", 6)
        )
        assert instr.movem_store

    def test_bad_reg_lists_rejected(self):
        from repro.errors import AssemblerError

        with pytest.raises(AssemblerError, match="descending"):
            assemble("    MOVEM.W D3-D0,-(SP)")
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("    MOVEM.W D0/D0,-(SP)")
        with pytest.raises(AssemblerError, match="register-list"):
            assemble("    MOVEM.W D0,D1")

    def test_str_includes_list(self):
        instr = assemble("    MOVEM.W D0-D1,-(SP)").instruction_list()[0]
        assert "D0/D1" in str(instr)


class TestTas:
    def test_tas_sets_high_bit_and_flags(self):
        cpu, bus, _ = run_source(
            """
            MOVE.W  #$0000,$4000
            TAS     $4000       ; tested 0 -> Z set, then bit 7 set
            SEQ     D1
            TAS     $4000       ; tested $80 -> N set
            SMI     D2
            HALT
            """
        )
        assert bus.peek(0x4000, 1) == 0x80
        assert cpu.regs.d[1] & 0xFF == 0xFF
        assert cpu.regs.d[2] & 0xFF == 0xFF
