"""Cross-engine validation: the macro model must track the micro engine.

These tests are the license for using the macro model at paper scale
(n up to 256): at micro-simulable sizes the two engines agree within a
few percent, per mode and per timing category.
"""

import pytest

from repro.machine import ExecutionMode, PrototypeConfig
from repro.programs.data import generate_matrices
from repro.timing_model import predict_matmul
from tests.engines import run_matmul_on

CFG = PrototypeConfig()

#: The micro engine tier the macro model is validated against.  The
#: differential suites prove all three tiers bit-identical, so any tier
#: would do; lockstep is the one the experiment runner uses by default.
MICRO_ENGINE = "lockstep"


def compare(mode, n, p, *, m=0, cfg=CFG, b_bits=None):
    kwargs = {} if b_bits is None else {"b_bits": b_bits, "b_max": 1 << b_bits}
    _, b = generate_matrices(n, **kwargs)
    _, run = run_matmul_on(mode, n, p, MICRO_ENGINE, m=m, cfg=cfg,
                           b_bits=b_bits)
    pred = predict_matmul(mode, cfg, n, p, added_multiplies=m, b=b)
    return run.result, pred


@pytest.mark.parametrize("n", [4, 8, 16])
def test_serial_within_half_percent(n):
    micro, macro = compare(ExecutionMode.SERIAL, n, 1)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.005)


@pytest.mark.parametrize(
    "mode",
    [ExecutionMode.SIMD, ExecutionMode.MIMD, ExecutionMode.SMIMD],
)
@pytest.mark.parametrize("n,p", [(8, 4), (16, 4)])
def test_parallel_within_two_percent(mode, n, p):
    micro, macro = compare(mode, n, p)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.02)


@pytest.mark.parametrize("mode", [ExecutionMode.SIMD, ExecutionMode.SMIMD])
def test_added_multiplies_tracked(mode):
    micro, macro = compare(mode, 8, 4, m=5)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.02)


def test_multi_mc_simd_tracked():
    micro, macro = compare(ExecutionMode.SIMD, 16, 8)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.03)


def test_category_breakdowns_agree():
    micro, macro = compare(ExecutionMode.SMIMD, 16, 4)
    mb = micro.breakdown()
    for cat, macro_val in macro.breakdown.items():
        micro_val = mb.get(cat, 0.0)
        assert macro_val == pytest.approx(micro_val, rel=0.05, abs=100), cat


def test_full_width_data_tracked():
    """Agreement holds for 16-bit random data too (higher mul variance)."""
    micro, macro = compare(ExecutionMode.SIMD, 8, 4, b_bits=16)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.02)


def test_mode_ordering_matches_micro():
    """Both engines order the modes identically at n=16."""

    def both(mode, p):
        micro, macro = compare(mode, 16, p if mode.is_parallel else 1)
        return micro.cycles, macro.cycles

    simd = both(ExecutionMode.SIMD, 4)
    smimd = both(ExecutionMode.SMIMD, 4)
    mimd = both(ExecutionMode.MIMD, 4)
    serial = both(ExecutionMode.SERIAL, 1)
    for engine in (0, 1):
        assert simd[engine] < smimd[engine] < mimd[engine] < serial[engine]


def test_wait_state_ablation_tracked():
    """Removing the queue's wait-state advantage shifts both engines
    equally (ws_main == ws_queue kills part of the SIMD edge)."""
    cfg = CFG.with_overrides(ws_main=0, ws_queue=0)
    micro, macro = compare(ExecutionMode.SIMD, 8, 4, cfg=cfg)
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.02)


@pytest.mark.parametrize(
    "overrides",
    [
        {"ws_main": 2, "ws_queue": 1},
        {"ws_main": 3, "ws_queue": 0},
        {"net_byte_latency": 100},
        {"net_byte_latency": 2},
        {"ws_status": 1},
        {"ws_status": 200},
        {"controller_cycles_per_word": 12},
        {"queue_capacity_words": 16},
    ],
)
@pytest.mark.parametrize(
    "mode", [ExecutionMode.SIMD, ExecutionMode.MIMD, ExecutionMode.SMIMD]
)
def test_differential_under_config_perturbations(overrides, mode):
    """The engines must agree across the configuration space, not just at
    the calibrated point — the differential test that protects the macro
    model from overfitting to one constant set."""
    from repro.memory import RefreshModel

    cfg = CFG.with_overrides(refresh=RefreshModel(250, 0), **overrides)
    micro, macro = compare(mode, 8, 4, cfg=cfg)
    # The macro model's bottleneck composition is intentionally slightly
    # conservative when the Fetch Unit Controller is made the bottleneck
    # (queue buffering smooths transients it treats as rate limits), so
    # the tolerance here is wider than at the calibrated point (2%).
    assert macro.cycles == pytest.approx(micro.cycles, rel=0.05), overrides
