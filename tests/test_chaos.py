"""Chaos engineering for the execution engine, deterministically.

``$REPRO_CHAOS`` arms seeded worker crashes and cache-entry corruption;
these tests drive the engine's two recovery paths — resubmission to a
fresh pool and corrupt-entry-as-miss — and assert that recovered runs
are bit-identical to undisturbed ones, with the damage visible in the
``--stats`` instrumentation.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ExecutionEngine, ResultCache, matmul_spec
from repro.faults import CHAOS_ENV, ChaosConfig
from repro.machine import ExecutionMode, PrototypeConfig

CFG = PrototypeConfig.calibrated()


def _specs():
    """Two cheap, distinct macro jobs (<= pool width, so the first pool
    attempt executes both and every crash sentinel gets written)."""
    return [
        matmul_spec(ExecutionMode.SMIMD, 32, 4, engine="macro", config=CFG),
        matmul_spec(ExecutionMode.MIMD, 32, 4, engine="macro", config=CFG),
    ]


@pytest.fixture
def chaos_env(monkeypatch, tmp_path):
    """Arm chaos with a caller-chosen knob string; sentinel state in tmp."""

    def arm(knobs: str):
        monkeypatch.setenv(
            CHAOS_ENV, f"seed=7,{knobs},dir={tmp_path / 'chaos-state'}"
        )

    yield arm
    monkeypatch.delenv(CHAOS_ENV, raising=False)


# ---------------------------------------------------------------------------
# Knob parsing
def test_parse_full_config(tmp_path):
    chaos = ChaosConfig.parse(
        f"seed=42, crash=0.5, corrupt=1.0, dir={tmp_path}"
    )
    assert chaos.seed == 42
    assert chaos.crash_rate == 0.5
    assert chaos.corrupt_rate == 1.0
    assert chaos.state_dir == str(tmp_path)


@pytest.mark.parametrize("text", [
    "crash=1.0",                # no seed
    "seed=1,banana=2",          # unknown key
    "seed=1,crash=oops",        # not a number
    "seed=1,crash=1.5",         # out of range
    "seed=1,crash",             # malformed entry
])
def test_parse_rejects_bad_configs(text):
    with pytest.raises(ConfigurationError):
        ChaosConfig.parse(text)


def test_from_env_off_by_default(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    assert ChaosConfig.from_env() is None


def test_decisions_are_deterministic_and_once_only(tmp_path):
    chaos = ChaosConfig(seed=3, crash_rate=1.0, state_dir=str(tmp_path))
    assert chaos._fraction("crash", "abc") == chaos._fraction("crash", "abc")
    assert chaos.should_crash("abc") is True  # doomed...
    assert chaos.should_crash("abc") is False  # ...but only once
    assert ChaosConfig(seed=3, crash_rate=0.0,
                       state_dir=str(tmp_path)).should_crash("def") is False


# ---------------------------------------------------------------------------
# Worker crashes: resubmission recovers, results identical, damage counted
def test_crashed_workers_recover_bit_identically(chaos_env, tmp_path):
    specs = _specs()
    baseline = ExecutionEngine(jobs=1).run(specs)

    chaos_env("crash=1.0")
    engine = ExecutionEngine(jobs=2)
    recovered = engine.run(specs)

    assert recovered == baseline
    # Every job crashed once; a pool break can hide a sibling's progress
    # and cost an extra recovery round, so >= rather than ==.
    assert engine.stats.resubmits >= len(specs)
    table = engine.stats.summary_table()
    assert table.splitlines()[1].split()[-1] == "resubmits"
    assert int(table.rstrip().splitlines()[-1].split()[-1]) >= len(specs)


def test_crash_storm_on_batch_larger_than_pool_recovers(chaos_env):
    """One crashed worker breaks the whole pool, failing every pending
    future — with more specs than workers and crash=1.0 every attempt
    crashes *somewhere*, yet each completes a little more work.  The
    progress-based resubmission loop must grind through to bit-identical
    results instead of giving up after a fixed retry count."""
    specs = [
        matmul_spec(ExecutionMode.SMIMD, 16 * (1 + i % 3), 4,
                    engine="macro", config=CFG, added_multiplies=i)
        for i in range(6)
    ]
    baseline = ExecutionEngine(jobs=1).run(specs)

    chaos_env("crash=1.0")
    engine = ExecutionEngine(jobs=2)
    assert engine.run(specs) == baseline
    assert engine.stats.resubmits >= len(specs)  # every job crashed once


def test_healthy_run_counts_no_resubmits():
    engine = ExecutionEngine(jobs=2)
    engine.run(_specs())
    assert engine.stats.resubmits == 0


# ---------------------------------------------------------------------------
# Cache corruption: garbled entries are misses, recomputation heals them
def test_corrupt_cache_entry_is_a_miss_then_heals(chaos_env, tmp_path):
    specs = _specs()
    cache = ResultCache(tmp_path / "cache", version="chaos-test")

    chaos_env("corrupt=1.0")
    first = ExecutionEngine(jobs=1, cache=cache).run(specs)

    # Every stored entry was garbled post-write: not one is readable.
    assert all(cache.load(s) is None for s in specs)

    # A later engine sees misses, recomputes, and (chaos being once-only
    # per entry) this time the entries stick — all bit-identical.
    engine = ExecutionEngine(jobs=1, cache=cache)
    second = engine.run(specs)
    assert second == first
    assert engine.stats.computed == len(specs)
    assert all(cache.load(s) == p for s, p in zip(specs, second))
    third = ExecutionEngine(jobs=1, cache=cache)
    assert third.run(specs) == first
    assert third.stats.cache_hits == len(specs)


def test_tampered_payload_fails_integrity_check(tmp_path):
    """Even without chaos, a cache entry whose payload no longer matches
    its recorded digest must load as a miss, not as wrong data."""
    spec = _specs()[0]
    cache = ResultCache(tmp_path / "cache", version="chaos-test")
    payload = ExecutionEngine(jobs=1, cache=cache).run([spec])[0]
    path = cache.entry_path(spec)
    entry = json.loads(path.read_text())
    entry["payload"]["cycles"] = entry["payload"]["cycles"] + 1
    path.write_text(json.dumps(entry))
    assert cache.load(spec) is None
    assert ExecutionEngine(jobs=1, cache=cache).run([spec])[0] == payload
