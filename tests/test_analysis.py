"""Tests for the analysis package, including agreement with the full model
and with the micro engine's instrumentation."""

import numpy as np
import pytest

from repro.analysis import (
    asymptotic_efficiency,
    comm_to_compute_ratio,
    count_operations,
    mulu_cycle_pmf,
    mulu_max_mean_cycles,
    mulu_mean_cycles,
    ones_pmf_uniform_range,
    predicted_crossover,
)
from repro.analysis.statistics import ones_std
from repro.core import DecouplingStudy, find_crossover
from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs import build_matmul, generate_matrices
from repro.programs.loader import run_matmul

CFG = PrototypeConfig()


class TestCounts:
    def test_paper_counts(self):
        c = count_operations(64, 4)
        assert c.multiplications_per_pe == 64**3 // 4
        assert c.additions_per_pe == 64**3 // 4
        assert c.network_accesses_total == 2 * 64 * 64
        assert c.barrier_count == 64

    def test_added_multiplies(self):
        c = count_operations(8, 4, added_multiplies=14)
        assert c.total_multiplies_per_pe == 15 * (8**3 // 4)

    def test_serial_has_no_network(self):
        c = count_operations(16, 1)
        assert c.network_accesses_total == 0
        assert c.arithmetic_to_communication_ratio() == float("inf")

    def test_ratio_grows_linearly(self):
        r1 = count_operations(64, 4).arithmetic_to_communication_ratio()
        r2 = count_operations(128, 4).arithmetic_to_communication_ratio()
        assert r2 == pytest.approx(2 * r1)

    def test_micro_engine_matches_counts(self):
        """The simulated machine performs exactly the counted operations."""
        n, p = 8, 4
        c = count_operations(n, p)
        a, b = generate_matrices(n)
        machine = PASMMachine(CFG, partition_size=p)
        bundle = build_matmul(
            ExecutionMode.MIMD, n, p, device_symbols=CFG.device_symbols()
        )
        run_matmul(machine, bundle, a, b)
        for lp in range(p):
            bus = machine.pe(lp).bus
            assert bus.net_bytes_sent == c.network_byte_ops_per_pe
            assert bus.net_bytes_received == c.network_byte_ops_per_pe


class TestStatistics:
    def test_pmf_power_of_two_matches_binomial(self):
        from scipy import stats

        support, pmf = ones_pmf_uniform_range(256)
        want = stats.binom.pmf(support, 8, 0.5)
        assert np.allclose(pmf, want)

    def test_pmf_sums_to_one(self):
        for b_max in (2, 3, 100, 256, 1000, 65536):
            _, pmf = ones_pmf_uniform_range(b_max)
            assert pmf.sum() == pytest.approx(1.0)

    def test_mean_cycles(self):
        # 8 random bits: mean ones = 4 → 46 cycles.
        assert mulu_mean_cycles(256) == pytest.approx(46.0)

    def test_max_mean_exceeds_mean(self):
        assert mulu_max_mean_cycles(256, 4) > mulu_mean_cycles(256)
        assert mulu_max_mean_cycles(256, 1) == pytest.approx(
            mulu_mean_cycles(256)
        )

    def test_max_mean_monte_carlo(self):
        rng = np.random.default_rng(11)
        samples = rng.integers(0, 256, size=(50_000, 4))
        ones = np.vectorize(lambda v: bin(v).count("1"))(samples)
        empirical = (38 + 2 * ones.max(axis=1)).mean()
        assert mulu_max_mean_cycles(256, 4) == pytest.approx(
            empirical, abs=0.1
        )

    def test_cycle_pmf_range(self):
        cycles, _ = mulu_cycle_pmf(65536)
        assert cycles.min() == 38 and cycles.max() == 38 + 32

    def test_ones_std(self):
        assert ones_std(256) == pytest.approx(np.sqrt(2.0))  # Bin(8, .5)


class TestPredictions:
    def test_crossover_prediction_near_model(self):
        """The two-term analytic estimate lands near the full model's
        crossover (and the paper's ≈14)."""
        pred = predicted_crossover(CFG, b_max=256, p=4, cols=16)
        assert 10 <= pred.crossover <= 18
        study = DecouplingStudy()
        measured = find_crossover(study, n=64, p=4).crossover
        assert pred.crossover == pytest.approx(measured, rel=0.25)

    def test_comm_ratio(self):
        assert comm_to_compute_ratio(64, 4) == pytest.approx(
            2 * 64 * 64 / (64**3 / 4)
        )

    def test_asymptotic_simd_superlinear(self):
        assert asymptotic_efficiency(CFG, b_max=256, mode="simd") > 1.0

    def test_asymptotic_async_at_most_unity(self):
        """S/MIMD's limit is exactly 1: per-iteration costs equal the
        serial program's, and the coupling/communication losses vanish as
        n grows — so its efficiency "increase[s] with the problem size,
        and never reaches or exceeds unity" (Section 10)."""
        assert asymptotic_efficiency(CFG, b_max=256, mode="smimd") <= 1.0

    def test_asymptotic_matches_model_trend(self):
        """The model's efficiency at n=256 approaches the analytic limit."""
        from repro.timing_model import predict_matmul

        limit = asymptotic_efficiency(CFG, b_max=256, mode="smimd")
        _, b = generate_matrices(256)
        from repro.machine import ExecutionMode as M

        tser = predict_matmul(M.SERIAL, CFG, 256, 1, b=b).cycles
        t = predict_matmul(M.SMIMD, CFG, 256, 4, b=b).cycles
        eff = tser / (4 * t)
        assert eff == pytest.approx(limit, abs=0.06)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            asymptotic_efficiency(CFG, b_max=256, mode="warp")
