"""The lockstep and vectorized engines' license to exist: differential
proof of bit-identity against both event engines.

``repro.sim.lockstep`` replaces the SIMD rendezvous discovered by event
interleaving with one computed directly (max over the enabled PEs'
stamped arrivals), batches controller transfers, and fast-forwards
releases past the heap when nothing can interleave.
``repro.sim.vectorized`` goes one tier further: consecutive broadcast
words decode once and execute across the whole enabled mask over
numpy-backed per-PE state, with per-PE cycle counts computed as array
arithmetic and the rendezvous as a max-reduction.  None of that is
allowed to *show*: every perf-visible quantity — makespan, per-PE cycle
and category accounting, instruction counts, finish times, result
matrices, queue statistics, MC busy accounting, and fault-detection
instants — must equal the pure-event schedule bit for bit, across all
four execution modes, under data-dependent timing variance, degraded
network routing, and fail-stop faults.  The four-tier matrix lives in
:mod:`tests.engines`; the ``engine_pair`` fixture names the candidate
tier in each test ID.

The hypothesis section generates random straight-line SIMD programs
(random blocks, masks, loop trips, and per-PE operand seeds) and holds
the same equality, plus the paper's core property in isolation: a
broadcast MULU completes at the *slowest* enabled PE's pace, so a run
is exactly as fast as its worst multiplier.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PEFailStopError
from repro.faults import FaultPlan, PEFailStop, representative_fault_plan
from repro.m68k.assembler import assemble
from repro.machine import ExecutionMode, PASMMachine
from repro.machine.partition import Partition
from repro.mc import EnqueueBlock, Loop, SetMask, WaitController
from repro.network import ExtraStageCubeTopology
from repro.perf import machine_counters
from repro.sim.lockstep import resolve_lockstep
from tests.engines import (
    ALL_MODES,
    CFG,
    ENGINE_TIERS,
    ENGINES,
    MODE_IDS,
    engine_pair,  # noqa: F401  (fixture)
    make_machine,
    mode_and_p,  # noqa: F401  (fixture)
    result_signature,
    signature,
)


@lru_cache(maxsize=None)
def _cached_signature(mode, n, p, engine, m=0, b_bits=None):
    """Fault-free signatures memoised across the parametrized matrix, so
    the pure-events baseline runs once per workload, not once per tier."""
    return signature(mode, n, p, engine, m=m, b_bits=b_bits)


# ---------------------------------------------------------------------------
# The core claim: four engines, four modes, one signature
def test_engine_tiers_identical(engine_pair, mode_and_p):
    baseline, candidate = engine_pair
    mode, p = mode_and_p
    assert (_cached_signature(mode, 16, p, candidate)
            == _cached_signature(mode, 16, p, baseline))


@pytest.mark.parametrize("mode", [ExecutionMode.SIMD, ExecutionMode.SMIMD],
                         ids=lambda m: m.name)
def test_added_multiplies_identical(mode, engine_pair):
    """The Figure 7 knob (data-dependent inner-loop MULUs) can't split
    the engines: more timing variance, same schedule."""
    baseline, candidate = engine_pair
    assert (_cached_signature(mode, 8, 4, candidate, m=5)
            == _cached_signature(mode, 8, 4, baseline, m=5))


def test_wide_operands_identical(engine_pair):
    """Full 16-bit operands maximise MULU cycle variance across PEs."""
    baseline, candidate = engine_pair
    assert (_cached_signature(ExecutionMode.SIMD, 8, 4, candidate, b_bits=16)
            == _cached_signature(ExecutionMode.SIMD, 8, 4, baseline,
                                 b_bits=16))


def test_multi_mc_groups_identical(engine_pair):
    """Two MC groups drift independently; all engines drift alike."""
    baseline, candidate = engine_pair
    assert (_cached_signature(ExecutionMode.SIMD, 16, 8, candidate)
            == _cached_signature(ExecutionMode.SIMD, 16, 8, baseline))


# ---------------------------------------------------------------------------
# Faults: degraded routing and fail-stop detection
def _shift_plan(p: int) -> FaultPlan:
    topo = ExtraStageCubeTopology(CFG.n_pes)
    return representative_fault_plan(
        topo, Partition(CFG, p).shift_permutation()
    )


def test_degraded_routing_identical():
    """A representative degraded plan (extra-stage rerouting active)
    produces the same schedule and the same verified product on every
    engine tier."""
    plan = _shift_plan(4)
    sigs = [signature(ExecutionMode.SMIMD, 16, 4, engine, fault_plan=plan)
            for engine in ENGINE_TIERS]
    assert all(s == sigs[0] for s in sigs)


@pytest.mark.parametrize("mode", [ExecutionMode.SIMD, ExecutionMode.MIMD],
                         ids=lambda m: m.name)
def test_failstop_detection_instant_identical(mode):
    """The watchdog must strike at the same simulated instant whether the
    schedule was assembled by events, computed by the lockstep batch, or
    executed as a live vector batch — including the lockstep engine's
    cancelled-request bookkeeping and the vector engine's pre-strike
    batch flush."""
    victim = Partition(CFG, 4).physical_pe(1)
    plan = FaultPlan(failstops=(PEFailStop(victim, 0.0),),
                     failstop_timeout=10_000.0)
    outcomes = []
    for engine in ENGINE_TIERS:
        with pytest.raises(PEFailStopError) as exc_info:
            signature(mode, 16, 4, engine, fault_plan=plan)
        outcomes.append((exc_info.value.pes, exc_info.value.detected_at,
                         exc_info.value.timeout))
    assert all(o == outcomes[0] for o in outcomes)
    assert outcomes[0][0] == (victim,)


def test_mid_run_strike_identical():
    """A strike landing mid-broadcast (not at t=0) is the adversarial
    case for release fast-forwarding and for live vector batches: the
    assassin's deadline sits on the heap, must bound every
    fast-forwarded release, and must see the victim's scalar state at
    the strike instant even if it died inside a vector batch."""
    victim = Partition(CFG, 4).physical_pe(2)
    plan = FaultPlan(failstops=(PEFailStop(victim, 20_000.0),),
                     failstop_timeout=8_000.0)
    outcomes = []
    for engine in ENGINE_TIERS:
        with pytest.raises(PEFailStopError) as exc_info:
            signature(ExecutionMode.SIMD, 16, 4, engine, fault_plan=plan)
        outcomes.append((exc_info.value.pes, exc_info.value.detected_at))
    assert all(o == outcomes[0] for o in outcomes)


@pytest.mark.parametrize("strike_at", [5_000.0, 12_500.0, 33_000.0])
def test_failstop_strike_sweep_identical(strike_at):
    """Single-fault sweep: strikes planted at different depths of the
    run (early transfer, mid-compute, late compute) — each lands inside
    a different vector-batch/scalar-seam neighbourhood, and every tier
    must detect at the same instant with the same victim set."""
    victim = Partition(CFG, 4).physical_pe(3)
    plan = FaultPlan(failstops=(PEFailStop(victim, strike_at),),
                     failstop_timeout=6_000.0)
    outcomes = []
    for engine in ENGINE_TIERS:
        with pytest.raises(PEFailStopError) as exc_info:
            signature(ExecutionMode.SIMD, 16, 4, engine, fault_plan=plan)
        outcomes.append((exc_info.value.pes, exc_info.value.detected_at,
                         exc_info.value.timeout))
    assert all(o == outcomes[0] for o in outcomes)
    assert outcomes[0][0] == (victim,)


# ---------------------------------------------------------------------------
# The lockstep/vectorized machinery is observably *on* (and off when asked)
def _run_simd_matmul(machine):
    from repro.programs.data import generate_matrices
    from repro.programs.loader import build_matmul, run_matmul

    bundle = build_matmul(ExecutionMode.SIMD, 16, machine.p,
                          device_symbols=CFG.device_symbols())
    a, b = generate_matrices(16)
    run_matmul(machine, bundle, a, b)
    return machine_counters(machine)


def test_lockstep_counters_report_batching():
    counters = _run_simd_matmul(make_machine(4, "lockstep"))
    assert counters["lockstep"] is True
    assert counters["vectorized"] is False
    assert counters["lockstep_rendezvous"] > 1_000
    assert counters["lockstep_releases"] > 1_000
    # Batching is real: p PEs resume per release, and carriers (the one
    # heap event a rendezvous may still need) are strictly rarer than
    # releases — fast-forwarded and inline releases need none at all.
    assert counters["lockstep_batch_pes"] >= counters["lockstep_releases"]
    assert counters["lockstep_carriers"] < counters["lockstep_releases"]
    # The scalar-lockstep tier never touches the vector engine.
    assert counters["vectorized_instructions"] == 0
    assert counters["vectorized_batches"] == 0
    assert counters["scalar_fallbacks"] == 0

    off_counters = _run_simd_matmul(make_machine(4, "local-time"))
    assert off_counters["lockstep"] is False
    assert off_counters["lockstep_rendezvous"] == 0
    # The batched engine needs far fewer heap events for the same run.
    assert (counters["events_scheduled"]
            < off_counters["events_scheduled"] / 2)


def test_vectorized_counters_report_batching():
    """The vector engine is observably on: broadcast compute words run
    through numpy batches, the words it cannot prove equivalent fall
    back to scalar release, and both are counted."""
    counters = _run_simd_matmul(make_machine(4, "vectorized"))
    assert counters["lockstep"] is True
    assert counters["vectorized"] is True
    assert counters["vectorized_instructions"] > 1_000
    assert counters["vectorized_batches"] > 0
    # Live batches span many words: that is the whole point.
    assert (counters["vectorized_instructions"]
            > 2 * counters["vectorized_batches"])
    # This workload has network-port MOVEs the vector engine must not
    # touch — the fallback path is genuinely exercised here.
    assert counters["scalar_fallbacks"] > 0
    # Every lockstep release was either a vector word or a scalar
    # fallback; nothing is double-counted or dropped.
    assert (counters["vectorized_instructions"] + counters["scalar_fallbacks"]
            == counters["lockstep_releases"])


def test_resolve_lockstep_env(monkeypatch):
    monkeypatch.delenv("REPRO_LOCKSTEP", raising=False)
    assert resolve_lockstep(None, True) is True    # default: on
    assert resolve_lockstep(None, False) is False  # needs the fast path
    assert resolve_lockstep(True, False) is False  # even when forced
    assert resolve_lockstep(False, True) is False
    monkeypatch.setenv("REPRO_LOCKSTEP", "0")
    assert resolve_lockstep(None, True) is False
    assert resolve_lockstep(True, True) is True    # explicit flag wins


def test_resolve_vectorized_env(monkeypatch):
    from repro.errors import ConfigurationError
    from repro.sim.vectorized import resolve_vectorized

    monkeypatch.delenv("REPRO_VECTORIZED", raising=False)
    assert resolve_vectorized(None, True) is True    # default: on
    assert resolve_vectorized(None, False) is False  # needs lockstep
    assert resolve_vectorized(False, True) is False
    monkeypatch.setenv("REPRO_VECTORIZED", "0")
    assert resolve_vectorized(None, True) is False
    assert resolve_vectorized(True, True) is True    # explicit flag wins
    # Contradiction: explicitly vectorized without the lockstep engine.
    with pytest.raises(ConfigurationError):
        resolve_vectorized(True, False)


def test_vectorized_without_lockstep_raises():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PASMMachine(CFG, partition_size=4, fast_path=True,
                    lockstep=False, vectorized=True)


# ---------------------------------------------------------------------------
# Hypothesis: random SIMD programs, masks, and operand seeds
_BODY_VOCAB = (
    "    ADDQ.W  #1,D2",
    "    MULU    D1,D2",
    "    MULU    D1,D3",
    "    MOVE.W  D2,D3",
    "    ADD.W   D3,D2",
    "    LSR.W   #2,D2",
)


def _simd_signature(engine: str, plan, blocks_src, seeds):
    """Run a generated SIMD program on one engine tier; fingerprint it."""
    machine = make_machine(4, engine)
    data_programs = [
        assemble(
            f"    HALT\n    .data\n    .org $4000\nmul: .dc.w {seed}",
            predefined=CFG.device_symbols(),
        )
        for seed in seeds
    ]
    blocks = {
        name: assemble(src, predefined=CFG.device_symbols()).instruction_list()
        for name, src in blocks_src.items()
    }
    result = machine.run_simd(plan, blocks, data_programs=data_programs)
    sig = result_signature(machine, result)
    sig["memory"] = [machine.pe(lp).cpu.regs.d[2] & 0xFFFF for lp in range(4)]
    return sig


@settings(deadline=None, max_examples=8)
@given(data=st.data())
def test_random_simd_programs_identical(data):
    """Random straight-line blocks, loop trip counts, masks, and per-PE
    multiplier seeds: the lockstep schedule equals the pure-event
    schedule, signature for signature.

    Mask changes are ordered behind ``WaitController`` — on the
    prototype (and in the MC DSL discipline) the enabled mask is not
    retargeted while a block transfer is in flight.
    """
    n_blocks = data.draw(st.integers(1, 3), label="n_blocks")
    blocks_src = {"init": "    MOVE.W  $4000,D1"}
    plan = [EnqueueBlock("init")]
    for i in range(n_blocks):
        body = data.draw(
            st.lists(st.sampled_from(_BODY_VOCAB), min_size=1, max_size=3),
            label=f"body{i}",
        )
        blocks_src[f"b{i}"] = "\n".join(body)
        mask = data.draw(
            st.sets(st.integers(0, 3), min_size=1, max_size=4),
            label=f"mask{i}",
        )
        trips = data.draw(st.integers(1, 6), label=f"trips{i}")
        plan += [WaitController(), SetMask(tuple(sorted(mask))),
                 Loop(trips, (EnqueueBlock(f"b{i}"),))]
    blocks_src["fini"] = "    HALT"
    plan += [WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    seeds = [data.draw(st.integers(0, 0xFFFF), label=f"seed{lp}")
             for lp in range(4)]

    pure = _simd_signature("pure-events", plan, blocks_src, seeds)
    for engine in ("lockstep", "vectorized"):
        assert _simd_signature(engine, plan, blocks_src, seeds) == pure


@pytest.mark.parametrize("trips", [3, 5])
def test_single_pe_mask_occupancy_identical(trips):
    """Regression (hypothesis-found): a one-PE mask consuming MULU pairs
    slower than the controller transfers them makes the staged queue
    admit words whose computed admit times leapfrog earlier (still
    uncomputed) releases.  The stats settlement must re-serialize them:
    trips=3 caught strict leapfrogging (high_water one too high),
    trips=5 caught the equal-instant tie, where an *independent* admit
    coinciding with an already-enabled release must count after it."""
    blocks_src = {"init": "    MOVE.W  $4000,D1",
                  "b0": "    MULU    D1,D2\n    MULU    D1,D2",
                  "fini": "    HALT"}
    plan = [EnqueueBlock("init"),
            WaitController(), SetMask((0,)),
            Loop(trips, (EnqueueBlock("b0"),)),
            WaitController(), SetMask((0, 1, 2, 3)), EnqueueBlock("fini")]
    seeds = [0, 0, 0, 0]
    pure = _simd_signature("pure-events", plan, blocks_src, seeds)
    for engine in ("lockstep", "vectorized"):
        assert _simd_signature(engine, plan, blocks_src, seeds) == pure


@settings(deadline=None, max_examples=8)
@given(mults=st.lists(st.integers(0, 0xFFFF), min_size=4, max_size=4))
def test_mulu_broadcast_paced_by_slowest_pe(mults):
    """The paper's instruction-level max-coupling, exactly: a broadcast
    MULU loop costs what it would cost if *every* PE held the multiplier
    with the most 1 bits (MULU = 38 + 2·ones).  Checked on the lockstep
    engine against the pure-event engine for the mixed operands, then
    against the all-worst run for the max property itself."""
    cfg = CFG.with_overrides(refresh=CFG.refresh.__class__(250, 0))
    worst = max(mults, key=lambda m: (m & 0xFFFF).bit_count())

    def run(engine, seeds):
        machine = PASMMachine(cfg, partition_size=4, **ENGINES[engine])
        data_programs = [
            assemble(
                f"    HALT\n    .data\n    .org $4000\nmul: .dc.w {seed}",
                predefined=cfg.device_symbols(),
            )
            for seed in seeds
        ]
        blocks = {
            "init": assemble("    MOVE.W  $4000,D1",
                             predefined=cfg.device_symbols()).instruction_list(),
            "body": assemble("    MULU    D1,D2",
                             predefined=cfg.device_symbols()).instruction_list(),
            "fini": assemble("    HALT",
                             predefined=cfg.device_symbols()).instruction_list(),
        }
        mc_program = [EnqueueBlock("init"),
                      Loop(12, (EnqueueBlock("body"),)),
                      EnqueueBlock("fini")]
        return machine.run_simd(mc_program, blocks,
                                data_programs=data_programs).cycles

    mixed = run("lockstep", mults)
    assert mixed == run("pure-events", mults)
    assert mixed == run("vectorized", mults)
    assert mixed == run("lockstep", [worst] * 4)
