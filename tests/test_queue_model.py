"""The queue-feed model against the micro engine's measured stalls."""

import pytest

from repro.analysis.queue_model import predict_queue_feed
from repro.m68k.assembler import assemble
from repro.machine import PASMMachine, PrototypeConfig
from repro.mc import EnqueueBlock, Loop

CFG = PrototypeConfig()
ITERS = 200


def run_block_loop(block_source: str, data_value: int | None = None):
    """Broadcast one block ITERS times; return (machine, result)."""
    machine = PASMMachine(CFG, partition_size=4)
    blocks = {
        "body": assemble(block_source).instruction_list(),
        "fini": assemble("    HALT").instruction_list(),
    }
    program = [Loop(ITERS, (EnqueueBlock("body"),)), EnqueueBlock("fini")]
    data_programs = None
    if data_value is not None:
        data = assemble(
            f"    HALT\n    .data\n    .org $4000\nv: .dc.w {data_value}"
        )
        blocks["init"] = assemble("    MOVE.W $4000,D1").instruction_list()
        program = [EnqueueBlock("init")] + program
        data_programs = [data] * 4
    result = machine.run_simd(program, blocks, data_programs=data_programs)
    return machine, result


class TestPredictions:
    def test_multiply_block_is_pe_bound(self):
        block = assemble("    MULU D1,D2").instruction_list()
        pred = predict_queue_feed(CFG, block, mul_ones=8)
        assert pred.bottleneck == "pe"
        assert pred.queue_stays_nonempty
        assert pred.pe_stall_per_block == 0.0

    def test_tiny_block_is_mc_bound(self):
        block = assemble("    ADDQ.W #1,D0").instruction_list()
        pred = predict_queue_feed(CFG, block)
        assert pred.bottleneck == "mc"
        assert not pred.queue_stays_nonempty
        assert pred.pe_stall_per_block > 0

    def test_slow_controller_binds(self):
        slow = CFG.with_overrides(controller_cycles_per_word=100)
        block = assemble("    MULU D1,D2").instruction_list()
        pred = predict_queue_feed(slow, block, mul_ones=8)
        assert pred.bottleneck == "controller"


class TestAgainstMicroEngine:
    def test_pe_bound_block_runs_stall_free(self):
        """Slow PE body ⇒ the queue never runs dry after start-up."""
        machine, result = run_block_loop("    MULU D1,D2",
                                         data_value=0xFFFF)
        stalls = result.queue_stats[0]["empty_stall_cycles"]
        assert stalls < 100  # startup only
        block = assemble("    MULU D1,D2").instruction_list()
        pred = predict_queue_feed(CFG, block, mul_ones=16)
        # Effective period matches the measured per-iteration time.
        measured = result.cycles / (ITERS + 1)
        assert pred.effective_period == pytest.approx(measured, rel=0.05)

    def test_mc_bound_block_stalls_as_predicted(self):
        """Tiny PE body ⇒ PEs outrun the MC and stall every iteration."""
        machine, result = run_block_loop("    ADDQ.W #1,D0")
        block = assemble("    ADDQ.W #1,D0").instruction_list()
        pred = predict_queue_feed(CFG, block)
        stalls = result.queue_stats[0]["empty_stall_cycles"]
        predicted_total = pred.pe_stall_per_block * ITERS
        assert stalls == pytest.approx(predicted_total, rel=0.25)
        measured = result.cycles / (ITERS + 1)
        assert pred.effective_period == pytest.approx(measured, rel=0.1)

    def test_control_hiding_follows_the_precondition(self):
        """The superlinearity mechanism switches off exactly where the
        model says: PE-bound blocks hide the MC loop entirely, MC-bound
        blocks run at the MC's pace."""
        _, heavy = run_block_loop("    MULU D1,D2", data_value=0xFFFF)
        _, light = run_block_loop("    ADDQ.W #1,D0")
        heavy_block = assemble("    MULU D1,D2").instruction_list()
        light_block = assemble("    ADDQ.W #1,D0").instruction_list()
        heavy_pred = predict_queue_feed(CFG, heavy_block, mul_ones=16)
        light_pred = predict_queue_feed(CFG, light_block)
        assert heavy_pred.queue_stays_nonempty
        assert not light_pred.queue_stays_nonempty
        # Heavy block: per-iteration time == PE time (control hidden).
        assert heavy.cycles / (ITERS + 1) == pytest.approx(
            heavy_pred.pe_cycles, rel=0.05
        )
        # Light block: per-iteration time == MC time (control exposed).
        assert light.cycles / (ITERS + 1) == pytest.approx(
            light_pred.mc_cycles, rel=0.1
        )
