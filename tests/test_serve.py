"""Tests for the serving layer: broker semantics and the HTTP service.

The contracts under test are the ones the subsystem exists for:

* **single-flight** — K concurrent submissions of one content hash run
  exactly one simulation (asserted via the engine's own counters);
* **bit-identity** — a payload served over HTTP equals the one the CLI
  engine computes, byte for byte, including whole exhibits;
* **backpressure** — a full admission queue answers 429 + ``Retry-After``
  and the client's jittered backoff recovers;
* **priority lanes** — interactive submissions schedule before sweeps;
* **crash survival** — seeded ``REPRO_CHAOS`` worker crashes are
  resubmitted without failing any request.
"""

import asyncio
import concurrent.futures
import json
import pathlib
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ExecError,
    ServiceDrainingError,
)
from repro.exec import ExecutionEngine, SimJobSpec, matmul_spec
from repro.machine import ExecutionMode
from repro.serve import (
    JobBroker,
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServerThread,
    exhibit_key,
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def echo_spec(value):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "echo"), ("value", value)))


def sleep_spec(value, seconds):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "sleep"), ("value", value),
                              ("seconds", seconds)))


def crash_spec(tag):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "crash"), ("tag", tag)))


def broker_run(body, **overrides):
    """Run an async test body against a started broker, then drain."""
    overrides.setdefault("jobs", 2)
    overrides.setdefault("no_cache", True)
    config = ServeConfig(port=0, **overrides)

    async def main():
        broker = JobBroker(config)
        await broker.start()
        try:
            return await body(broker)
        finally:
            await broker.drain(grace_s=2.0)

    return asyncio.run(main())


async def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Broker: single-flight, memo, disk cache
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_submissions_compute_once(self):
        spec = sleep_spec("one-flight", 0.2)

        async def body(broker):
            payloads = await asyncio.gather(
                *[broker.fetch(spec, lane="interactive") for _ in range(8)]
            )
            assert all(p == payloads[0] for p in payloads)
            # Exactly one pool submission, asserted from both the
            # engine's stats and the service counters.
            assert broker.stats.computed == 1
            assert broker.metrics.total("pasm_serve_computed_total") == 1
            assert broker.metrics.value(
                "pasm_serve_submitted_total", outcome="dedup") == 7
            entry = broker.get(spec.content_hash)
            assert entry.waiters == 8

        broker_run(body)

    def test_repeat_after_completion_is_a_memo_hit(self):
        spec = echo_spec("memoized")

        async def body(broker):
            await broker.fetch(spec)
            entry, outcome = await broker.submit(spec=spec)
            assert outcome == "memo"
            assert entry.state == "done"
            assert await asyncio.shield(entry.future) == {"value": "memoized"}
            assert broker.stats.computed == 1

        broker_run(body)

    def test_disk_cache_hit_served_without_touching_pool(self, tmp_path):
        spec = echo_spec("persisted")

        async def warm(broker):
            await broker.fetch(spec)

        broker_run(warm, no_cache=False, cache_dir=str(tmp_path))

        async def cold(broker):
            entry, outcome = await broker.submit(spec=spec)
            assert outcome == "cached"
            assert await asyncio.shield(entry.future) == {"value": "persisted"}
            assert broker.stats.computed == 0
            assert broker.stats.cache_hits == 1
            assert broker.metrics.total("pasm_serve_computed_total") == 0

        broker_run(cold, no_cache=False, cache_dir=str(tmp_path))

    def test_distinct_specs_do_not_coalesce(self):
        async def body(broker):
            a, b = echo_spec("a"), echo_spec("b")
            ra, rb = await asyncio.gather(broker.fetch(a), broker.fetch(b))
            assert ra == {"value": "a"} and rb == {"value": "b"}
            assert broker.stats.computed == 2

        broker_run(body)


# ---------------------------------------------------------------------------
# Broker: admission, lanes, timeouts, drain
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_queue_overflow_raises_backpressure(self):
        async def body(broker):
            await broker.submit(spec=sleep_spec("blocker", 2.0))
            await _wait_until(lambda: broker.in_flight == 1)
            await broker.submit(spec=sleep_spec("q1", 2.0))
            await broker.submit(spec=sleep_spec("q2", 2.0))
            assert broker.queue_depth == 2
            with pytest.raises(BackpressureError) as err:
                await broker.submit(spec=sleep_spec("overflow", 2.0))
            assert err.value.retry_after == broker.config.retry_after_s
            # The refused submission must not leave a placeholder behind.
            assert broker.get(sleep_spec("overflow", 2.0).content_hash) is None

        broker_run(body, jobs=1, queue_limit=2, retry_after_s=3.0,
                   drain_grace_s=0.1)

    def test_internal_fanout_bypasses_admission_bound(self):
        async def body(broker):
            await broker.submit(spec=sleep_spec("blocker", 2.0))
            await _wait_until(lambda: broker.in_flight == 1)
            await broker.submit(spec=sleep_spec("q1", 2.0))
            entry, outcome = await broker.submit(
                spec=sleep_spec("internal", 2.0), internal=True
            )
            assert outcome == "queued"

        broker_run(body, jobs=1, queue_limit=1, drain_grace_s=0.1)

    def test_draining_refuses_new_but_serves_memo(self):
        done = echo_spec("already-done")

        async def body(broker):
            await broker.fetch(done)
            broker.draining = True
            entry, outcome = await broker.submit(spec=done)
            assert outcome == "memo"
            with pytest.raises(ServiceDrainingError):
                await broker.submit(spec=echo_spec("too-late"))

        broker_run(body)

    def test_unknown_lane_rejected(self):
        async def body(broker):
            with pytest.raises(ConfigurationError, match="lane"):
                await broker.submit(spec=echo_spec("x"), lane="express")

        broker_run(body)

    def test_drain_lets_inflight_work_finish(self):
        spec = sleep_spec("drainee", 0.3)

        async def body(broker):
            entry, _ = await broker.submit(spec=spec)
            await broker.drain(grace_s=5.0)
            assert entry.state == "done"
            assert entry.future.result()["value"] == "drainee"

        broker_run(body, drain_grace_s=5.0)


class TestScheduling:
    def test_interactive_lane_preempts_sweep(self):
        async def body(broker):
            blocker, _ = await broker.submit(
                spec=sleep_spec("blocker", 0.3), lane="interactive"
            )
            await _wait_until(lambda: broker.in_flight == 1)
            s1, _ = await broker.submit(spec=echo_spec("s1"), lane="sweep")
            s2, _ = await broker.submit(spec=echo_spec("s2"), lane="sweep")
            hot, _ = await broker.submit(spec=echo_spec("hot"),
                                         lane="interactive")
            await asyncio.gather(*(asyncio.shield(e.future)
                                   for e in (blocker, s1, s2, hot)))
            # The interactive job was queued last but scheduled first.
            assert hot.started < s1.started
            assert hot.started < s2.started

        broker_run(body, jobs=1)

    def test_job_timeout_fails_structured(self):
        spec = sleep_spec("laggard", 5.0)

        async def body(broker):
            with pytest.raises(ExecError, match="timeout"):
                await broker.fetch(spec)
            entry = broker.get(spec.content_hash)
            assert entry.state == "failed"
            assert broker.metrics.value(
                "pasm_serve_failed_total", reason="timeout") == 1

        broker_run(body, job_timeout_s=0.2, drain_grace_s=0.1)

    def test_failed_entry_is_retried_by_a_fresh_submission(self):
        spec = sleep_spec("retry-me", 5.0)

        async def body(broker):
            with pytest.raises(ExecError):
                await broker.fetch(spec)
            # The failed entry must not poison future submissions: a
            # fresh one re-runs rather than replaying the failure.
            entry, outcome = await broker.submit(spec=spec)
            assert outcome == "queued"
            assert entry.state in ("queued", "running")

        broker_run(body, job_timeout_s=0.2, drain_grace_s=0.1)


# ---------------------------------------------------------------------------
# Broker: crash survival
# ---------------------------------------------------------------------------
class TestCrashSurvival:
    def test_chaos_crash_resubmitted_without_failing_request(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS", f"seed=11,crash=1.0,dir={tmp_path / 'chaos'}"
        )

        async def body(broker):
            for i in range(1, 4):
                payload = await broker.fetch(echo_spec(f"chaotic-{i}"))
                assert payload == {"value": f"chaotic-{i}"}
            assert broker.metrics.total("pasm_serve_resubmits_total") == 3
            assert broker.stats.computed == 3

        broker_run(body)

    def test_persistent_crasher_gives_up_with_structured_error(self):
        async def body(broker):
            with pytest.raises(ExecError, match="crashed the worker pool"):
                await broker.fetch(crash_spec("hopeless"))
            # The pool was rebuilt: healthy jobs still execute.
            assert await broker.fetch(echo_spec("survivor")) == {
                "value": "survivor"
            }

        broker_run(body, max_resubmits=1)


# ---------------------------------------------------------------------------
# HTTP service end to end
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def shared_server(tmp_path_factory):
    config = ServeConfig(
        port=0, jobs=2,
        cache_dir=str(tmp_path_factory.mktemp("serve-cache")),
    )
    with ServerThread(config) as server:
        yield server


@pytest.fixture()
def shared_client(shared_server):
    return ServeClient(port=shared_server.port, max_retries=2, timeout=30)


class TestHttpService:
    def test_healthz_reports_service_shape(self, shared_client):
        doc = shared_client.healthz()
        assert doc["status"] == "ok"
        assert doc["api"] == "v1"
        assert doc["pool_jobs"] == 2
        assert doc["cache"] is True

    def test_served_payload_bit_identical_to_cli_engine(self, shared_client):
        spec = matmul_spec(ExecutionMode.SIMD, 16, 4, engine="macro")
        served = shared_client.run(spec)
        direct = ExecutionEngine(jobs=1).run([spec])[0]
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True)

    def test_submit_then_poll_lifecycle(self, shared_client):
        spec = echo_spec("poll-me")
        doc = shared_client.submit(spec)
        assert doc["job"] == spec.content_hash
        assert doc["location"] == f"/v1/jobs/{spec.content_hash}"
        final = shared_client.status(spec.content_hash, wait=True,
                                     poll_timeout=10)
        assert final["state"] == "done"
        assert final["result"] == {"value": "poll-me"}

    def test_second_submission_reports_hit(self, shared_client):
        spec = echo_spec("hit-twice")
        shared_client.run(spec)
        doc = shared_client.submit(spec, wait=True)
        assert doc["outcome"] in ("memo", "cached", "dedup")
        assert doc["state"] == "done"

    def test_metrics_render_prometheus_text(self, shared_client):
        shared_client.run(echo_spec("metric-fodder"))
        text = shared_client.metrics()
        assert "# TYPE pasm_serve_submitted_total counter" in text
        assert "# TYPE pasm_serve_queue_depth gauge" in text
        assert "# TYPE pasm_serve_job_latency_seconds summary" in text
        assert 'pasm_serve_job_latency_seconds{quantile="0.5"}' in text
        assert 'pasm_serve_job_latency_seconds{quantile="0.95"}' in text
        assert "pasm_serve_cache_hit_ratio" in text
        assert 'pasm_serve_requests_total{method="GET"' in text

    def test_stats_table_served(self, shared_client):
        shared_client.run(echo_spec("stats-fodder"))
        assert "TOTAL" in shared_client.stats()

    def test_malformed_submissions_answer_400(self, shared_client):
        bad = [
            {"spec": {"program": "matmul"}},            # missing fields
            {"spec": {"program": "matmul", "mode": "vliw", "n": 4, "p": 1}},
            {},                                          # neither key
            {"spec": {}, "exhibit": "fig7"},             # both keys
        ]
        for doc in bad:
            reply = shared_client.request("POST", "/v1/jobs", doc=doc)
            assert reply.status == 400, doc
            assert "error" in reply.json()

    def test_unknown_routes_and_methods(self, shared_client):
        assert shared_client.request("GET", "/v1/nope").status == 404
        assert shared_client.request("DELETE", "/healthz").status == 405
        assert shared_client.request(
            "GET", "/v1/jobs/deadbeef").status == 404


class TestBackpressureHttp:
    def test_overflow_answers_429_with_retry_after_then_recovers(self):
        config = ServeConfig(port=0, jobs=1, queue_limit=1, no_cache=True,
                             retry_after_s=1.0, drain_grace_s=0.1)
        with ServerThread(config) as server:
            raw = ServeClient(port=server.port, max_retries=0)
            statuses = []
            refusal = None
            for i in range(8):
                body = json.dumps({
                    "spec": sleep_spec(f"flood-{i}", 1.0).to_dict()
                }).encode()
                # Single attempt, no retry loop: inspect the raw refusal.
                reply = raw._request_once("POST", "/v1/jobs", body, 10.0)
                statuses.append(reply.status)
                if reply.status == 429:
                    refusal = reply
            assert 429 in statuses
            assert refusal.headers.get("retry-after") == "1"
            assert "retry_after" in refusal.json()
            # A client with jittered exponential backoff gets through.
            patient = ServeClient(port=server.port, max_retries=10,
                                  backoff_base=0.1, backoff_cap=1.0)
            result = patient.run(echo_spec("patience"), timeout=60)
            assert result == {"value": "patience"}
            assert patient.retries_performed >= 0


# ---------------------------------------------------------------------------
# Acceptance E2E: 32 concurrent fig7 clients, one simulation
# ---------------------------------------------------------------------------
class TestExhibitServing:
    def test_32_concurrent_fig7_requests_compute_once_byte_identical(
            self, tmp_path):
        golden = (GOLDEN_DIR / "fig7.json").read_text()
        config = ServeConfig(port=0, jobs=4, cache_dir=str(tmp_path),
                             queue_limit=256)
        with ServerThread(config) as server:
            def fetch(i):
                client = ServeClient(port=server.port, max_retries=4,
                                     timeout=60)
                return client.exhibit("fig7", timeout=300)

            with concurrent.futures.ThreadPoolExecutor(32) as pool:
                payloads = list(pool.map(fetch, range(32)))
            assert all(p == payloads[0] for p in payloads)
            assert payloads[0] == golden
            client = ServeClient(port=server.port)
            m = client.metrics()
            # 31 of the 32 submissions attached to the in-flight exhibit.
            assert 'pasm_serve_submitted_total{outcome="dedup"} 31' in m
            assert 'quantile="0.95"' in m

    def test_exhibit_key_identity(self):
        assert exhibit_key("fig7", None) == exhibit_key("fig7", None)
        assert exhibit_key("fig7", None) != exhibit_key("fig7", 1)
        assert exhibit_key("fig7", None) != exhibit_key("fig6", None)

    def test_unknown_exhibit_fails_cleanly(self, shared_server):
        client = ServeClient(port=shared_server.port, max_retries=1)
        with pytest.raises(ServeClientError, match="unknown exhibit"):
            client.exhibit("fig99", timeout=30)


# ---------------------------------------------------------------------------
# Property: interleaved distinct specs never cross-contaminate
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(values=st.lists(st.integers(min_value=0, max_value=10 ** 9),
                       min_size=2, max_size=8, unique=True),
       lanes=st.lists(st.sampled_from(("interactive", "sweep")),
                      min_size=8, max_size=8))
def test_interleaved_distinct_specs_never_cross_contaminate(
        shared_server, values, lanes):
    """Concurrent distinct submissions each get *their own* payload back
    — no future mix-ups, no cache key collisions, on any lane mix."""
    def fetch(args):
        value, lane = args
        client = ServeClient(port=shared_server.port, max_retries=4,
                             timeout=30)
        return value, client.run(echo_spec(value), lane=lane, timeout=60)

    jobs = [(v, lanes[i % len(lanes)]) for i, v in enumerate(values)]
    with concurrent.futures.ThreadPoolExecutor(len(jobs)) as pool:
        for value, payload in pool.map(fetch, jobs):
            assert payload == {"value": value}


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------
class TestServeCli:
    def test_bad_flags_die_cleanly(self, capsys):
        from repro.serve.app import main
        with pytest.raises(SystemExit) as err:
            main(["--jobs", "banana"])
        assert err.value.code == 2
        assert "banana" in capsys.readouterr().err

    def test_bad_env_port_dies_cleanly(self, monkeypatch, capsys):
        from repro.serve.app import main
        monkeypatch.setenv("REPRO_SERVE_PORT", "eighty")
        with pytest.raises(SystemExit) as err:
            main([])
        assert err.value.code == 2
        assert "REPRO_SERVE_PORT" in capsys.readouterr().err
