"""The fast path's one invariant, tested from every angle: local-time
execution and the decoded/handler caches are *invisible*.

A machine with ``fast_path=True`` must produce, bit for bit, everything
the pure-event schedule produces — cycle counts, per-PE finish times,
instruction counts, per-category cycle accounting, queue/MC statistics,
and the result matrices — across all four execution modes, under
hypothesis-chosen shapes, and with an active fault plan (the fail-stop
watchdog must fire at the same instant either way).  The third engine
tier (lockstep) gets the same treatment in
``test_lockstep_differential.py``; both suites share
:mod:`tests.engines`.

Plus unit tests for the machinery itself: the kernel's sleep-event free
list, the local-clock counters, the closed-form inline refresh stall,
and the :mod:`repro.perf` read side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.engines import ALL_MODES, CFG, MODE_IDS, signature
from repro.errors import PEFailStopError
from repro.faults import FaultPlan, PEFailStop
from repro.machine import ExecutionMode, PASMMachine
from repro.machine.partition import Partition
from repro.memory.dram import RefreshModel
from repro.perf import kernel_counters, machine_counters, percentile
from repro.programs.data import generate_matrices
from repro.programs.loader import build_matmul, run_matmul
from repro.sim import Environment
from repro.sim.localtime import resolve_fast_path


# ---------------------------------------------------------------------------
# Equivalence across the four modes
@pytest.mark.parametrize("mode,p", ALL_MODES, ids=MODE_IDS)
def test_fast_path_bit_identical(mode, p):
    fast = signature(mode, 16, p, "local-time")
    pure = signature(mode, 16, p, "pure-events")
    assert fast == pure


@settings(deadline=None, max_examples=8)
@given(data=st.data())
def test_fast_path_bit_identical_random_shapes(data):
    """Hypothesis sweep: any (mode, p, n) with n a multiple of p, n<=16."""
    mode = data.draw(st.sampled_from(
        [ExecutionMode.SIMD, ExecutionMode.SMIMD, ExecutionMode.MIMD]))
    p = data.draw(st.sampled_from([4, 8, 16]))
    n = data.draw(st.sampled_from([k for k in (4, 8, 12, 16) if k % p == 0]))
    assert (signature(mode, n, p, "local-time")
            == signature(mode, n, p, "pure-events"))


# ---------------------------------------------------------------------------
# Equivalence under an active fault plan: detection must not move
def _failstop_plan(p: int, logical: int) -> FaultPlan:
    victim = Partition(CFG, p).physical_pe(logical)
    return FaultPlan(failstops=(PEFailStop(victim, 0.0),),
                     failstop_timeout=10_000.0)


@pytest.mark.parametrize("mode", [ExecutionMode.SIMD, ExecutionMode.MIMD],
                         ids=lambda m: m.name)
def test_failstop_detection_identical_under_fast_path(mode):
    plan = _failstop_plan(4, logical=1)
    outcomes = []
    for engine in ("local-time", "pure-events"):
        with pytest.raises(PEFailStopError) as exc_info:
            signature(mode, 16, 4, engine, fault_plan=plan)
        outcomes.append((exc_info.value.pes, exc_info.value.detected_at))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == (plan.failstops[0].pe,)


def test_late_strike_equivalent_under_fast_path():
    """A strike after completion must not disturb either schedule."""
    plan = FaultPlan(failstops=(
        PEFailStop(Partition(CFG, 4).physical_pe(1), 10_000_000.0),))
    fast = signature(ExecutionMode.SMIMD, 16, 4, "local-time",
                     fault_plan=plan)
    pure = signature(ExecutionMode.SMIMD, 16, 4, "pure-events",
                     fault_plan=plan)
    assert fast == pure


# ---------------------------------------------------------------------------
# The machinery: sleep pool, local clocks, counters
def test_sleep_events_are_recycled():
    env = Environment()

    def sleeper():
        for _ in range(5):
            yield env.sleep(3.0)

    env.process(sleeper())
    env.run()
    assert env.now == 15.0
    # An event returns to the free list only *after* its callbacks run,
    # and the callbacks are what request the next sleep — so the second
    # sleep also allocates; from the third on, every sleep reuses.
    assert env.sleep_reuses == 3
    counters = kernel_counters(env)
    assert counters["sleep_reuses"] == env.sleep_reuses
    assert counters["events_processed"] == counters["events_scheduled"]


def test_fast_path_absorbs_charges_without_heap_events():
    """A fast-path run schedules far fewer events than the pure run."""
    def events_for(fast):
        bundle = build_matmul(ExecutionMode.SERIAL, 8, 1,
                              device_symbols=CFG.device_symbols())
        a, b = generate_matrices(8)
        machine = PASMMachine(CFG, partition_size=1, fast_path=fast)
        run_matmul(machine, bundle, a, b)
        return machine_counters(machine)

    fast, pure = events_for(True), events_for(False)
    assert pure["local_charges"] == 0 and pure["sync_flushes"] == 0
    assert fast["local_charges"] > 1_000
    assert fast["events_scheduled"] < pure["events_scheduled"] / 4
    assert fast["fast_path"] and not pure["fast_path"]


def test_resolve_fast_path_env(monkeypatch):
    monkeypatch.delenv("REPRO_PURE_EVENTS", raising=False)
    assert resolve_fast_path(None) is True
    assert resolve_fast_path(False) is False
    monkeypatch.setenv("REPRO_PURE_EVENTS", "1")
    assert resolve_fast_path(None) is False
    assert resolve_fast_path(True) is True  # explicit flag wins


def test_inline_refresh_matches_stall_cycles():
    """The buses' closed-form refresh arithmetic == RefreshModel's."""
    model = RefreshModel(period=250, steal=2)
    period, steal = model.inline_constants()
    for now in [0.0, 0.5, 1.9, 2.0, 100.0, 249.0, 250.0, 251.5, 1000.25]:
        phase = now % period
        inline = steal - phase if phase < steal else 0.0
        assert inline == model.stall_cycles(now)


def test_percentile_matches_definition():
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 95) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert abs(percentile([1.0, 2.0, 3.0, 4.0], 95) - 3.85) < 1e-12
    with pytest.raises(ValueError):
        percentile([1.0], 101)
