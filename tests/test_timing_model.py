"""Unit tests for the macro timing model components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.m68k.assembler import assemble
from repro.machine import PrototypeConfig
from repro.programs.data import MatmulLayout, generate_matrices, multiplier_schedule
from repro.timing_model import (
    CostEnv,
    comm_pipeline,
    expected_max_ones,
    expected_ones,
    ones_of_schedule,
    static_cost,
)
from repro.timing_model.fragments import loop_overhead
from repro.timing_model.mulstats import (
    async_mult_extra_cycles,
    max_ones_gap,
    simd_mult_extra_cycles,
)

CFG = PrototypeConfig()
ENV_MIMD = CostEnv.for_mode(CFG, simd_stream=False)
ENV_SIMD = CostEnv.for_mode(CFG, simd_stream=True)


class TestMulStats:
    def test_expected_ones(self):
        assert expected_ones(16) == 8.0
        assert expected_ones(6) == 3.0

    def test_expected_max_degenerate(self):
        assert expected_max_ones(16, 1) == pytest.approx(8.0)

    def test_expected_max_increases_with_p(self):
        vals = [expected_max_ones(16, p) for p in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(vals, vals[1:]))

    def test_expected_max_bounded_by_bits(self):
        assert expected_max_ones(8, 1000) <= 8.0

    @given(st.integers(2, 16), st.integers(1, 16))
    @settings(max_examples=30)
    def test_expected_max_matches_monte_carlo(self, bits, p):
        exact = expected_max_ones(bits, p)
        rng = np.random.default_rng(42)
        samples = rng.binomial(bits, 0.5, size=(20_000, p)).max(axis=1)
        assert exact == pytest.approx(samples.mean(), abs=0.05)

    def test_gap_positive(self):
        assert max_ones_gap(16, 4) > 0
        assert max_ones_gap(16, 1) == pytest.approx(0.0)

    def test_schedule_aggregations(self):
        _, b = generate_matrices(8, b_bits=16)
        sched = ones_of_schedule(multiplier_schedule(b, 4))
        assert sched.shape == (4, 8, 2)
        simd = simd_mult_extra_cycles(sched)
        per_pe = async_mult_extra_cycles(sched)
        assert per_pe.shape == (4, 8)
        # SIMD max-coupling always costs at least any single PE's time.
        assert simd >= per_pe.sum(axis=1).max() / 1  # sum of per-step sums
        assert simd >= float(per_pe.mean(axis=0).sum())


class TestMultiplierSchedule:
    def test_matches_direct_indexing(self):
        n, p = 8, 4
        _, b = generate_matrices(n, b_bits=16)
        sched = multiplier_schedule(b, p)
        cols = n // p
        for i in range(p):
            for j in range(n):
                for v in range(cols):
                    vp = i * cols + v
                    assert sched[i, j, v] == b[(vp + j) % n, vp]

    def test_each_b_element_used_exactly_n_over_p_times_per_pe(self):
        n, p = 16, 4
        _, b = generate_matrices(n, b_bits=16)
        sched = multiplier_schedule(b, p)
        # Every column's elements all appear exactly once across steps.
        for i in range(p):
            for v in range(n // p):
                vp = i * (n // p) + v
                assert sorted(sched[i, :, v]) == sorted(b[:, vp])


class TestStaticCost:
    def test_simple_block(self):
        instrs = assemble(
            "        .timecat mult\n        MOVE.W D0,D1\n        ADD.W D1,D2"
        ).instruction_list()
        cost = static_cost(instrs, ENV_MIMD, CFG)
        # 2 instructions, 4+4 cycles + 2 stream ws + 2 refresh calls
        expected = 8 + 2 * CFG.ws_main + 2 * CFG.refresh.average_stall_per_access
        assert cost.cycles == pytest.approx(expected)
        assert cost.by_category == {"mult": pytest.approx(expected)}

    def test_var_multiply_counted(self):
        instrs = assemble("        MULU D1,D0\n        MULU D1,D5").instruction_list()
        cost = static_cost(instrs, ENV_MIMD, CFG)
        assert cost.var_multiplies == 2
        # charged at the 38-cycle base
        assert cost.cycles >= 76

    def test_simd_stream_cheaper(self):
        instrs = assemble("        MOVE.W D0,D1").instruction_list()
        mimd = static_cost(instrs, ENV_MIMD, CFG).cycles
        simd = static_cost(instrs, ENV_SIMD, CFG).cycles
        # one stream word: saves ws_main - ws_queue plus the refresh call
        saving = (CFG.ws_main - CFG.ws_queue) + CFG.refresh.average_stall_per_access
        assert mimd - simd == pytest.approx(saving)

    def test_device_access_classified(self):
        instrs = assemble(
            "        MOVE.B D0,NETTX", predefined=CFG.device_symbols()
        ).instruction_list()
        cost = static_cost(instrs, ENV_MIMD, CFG)
        # write goes to the device (ws_device), not RAM
        base = 16 + 3 * CFG.ws_main + CFG.ws_device
        assert cost.cycles == pytest.approx(
            base + CFG.refresh.average_stall_per_access
        )

    def test_status_access_uses_status_wait_states(self):
        instrs = assemble(
            "        MOVE.W NETSTAT,D5", predefined=CFG.device_symbols()
        ).instruction_list()
        cost = static_cost(instrs, ENV_MIMD, CFG)
        assert cost.cycles > CFG.ws_status  # dominated by the poll port

    def test_rejects_control_flow(self):
        instrs = assemble("x:  BRA x").instruction_list()
        with pytest.raises(ValueError, match="straight-line"):
            static_cost(instrs, ENV_MIMD, CFG)

    def test_scaled(self):
        instrs = assemble("        MULU D1,D0").instruction_list()
        cost = static_cost(instrs, ENV_MIMD, CFG)
        double = cost.scaled(2)
        assert double.cycles == pytest.approx(2 * cost.cycles)
        assert double.var_multiplies == 2


class TestLoopOverhead:
    def test_zero_iterations_free(self):
        assert loop_overhead(0, ENV_MIMD, CFG).cycles == 0

    def test_counts(self):
        one = loop_overhead(1, ENV_MIMD, CFG).cycles
        ten = loop_overhead(10, ENV_MIMD, CFG).cycles
        # 9 extra taken-DBRAs
        dbra_taken = 10 + 2 * CFG.ws_main + CFG.refresh.average_stall_per_access
        assert ten - one == pytest.approx(9 * dbra_taken)

    def test_category(self):
        cost = loop_overhead(5, ENV_MIMD, CFG, category="comm")
        assert list(cost.by_category) == ["comm"]


class TestCommPipeline:
    def test_monotone_in_elements(self):
        a = comm_pipeline(CFG, ENV_MIMD, polling=False, n_elements=4)
        b = comm_pipeline(CFG, ENV_MIMD, polling=False, n_elements=8)
        assert b.cycles > a.cycles

    def test_polling_costs_more(self):
        plain = comm_pipeline(CFG, ENV_MIMD, polling=False, n_elements=16)
        polled = comm_pipeline(CFG, ENV_MIMD, polling=True, n_elements=16)
        assert polled.cycles > plain.cycles
        assert polled.per_element_steady > plain.per_element_steady

    def test_latency_bound_when_slow_network(self):
        slow = CFG.with_overrides(net_byte_latency=500)
        phase = comm_pipeline(
            slow, CostEnv.for_mode(slow, False), polling=False, n_elements=16
        )
        # two bytes per element through a 1-byte/500-cycle mover
        assert phase.per_element_steady >= 1000

    def test_code_bound_when_fast_network(self):
        fast = CFG.with_overrides(net_byte_latency=1)
        phase = comm_pipeline(
            fast, CostEnv.for_mode(fast, False), polling=False, n_elements=16
        )
        assert phase.per_element_steady < 250

    def test_simd_variant_cheaper_than_pe_loop(self):
        with_loop = comm_pipeline(CFG, ENV_SIMD, polling=False, n_elements=16)
        no_loop = comm_pipeline(
            CFG, ENV_SIMD, polling=False, n_elements=16, pe_loop=False
        )
        assert no_loop.cycles < with_loop.cycles
