"""The documentation can't rot: every assembly snippet in
docs/ASSEMBLY.md must assemble, and the documented device map must match
the configuration."""

import re
from pathlib import Path

import pytest

from repro.m68k.assembler import assemble
from repro.machine import PrototypeConfig

DOC = Path(__file__).parent.parent / "docs" / "ASSEMBLY.md"
CFG = PrototypeConfig()


def assembly_snippets():
    """Extract ```asm fenced blocks from the doc."""
    text = DOC.read_text()
    return re.findall(r"```asm\n(.*?)```", text, flags=re.DOTALL)


def test_doc_exists():
    assert DOC.exists()


@pytest.mark.parametrize("idx", range(len(assembly_snippets())))
def test_snippet_assembles(idx):
    snippet = assembly_snippets()[idx]
    symbols = dict(CFG.device_symbols())
    symbols["PEID"] = 0
    # Snippets may be fragments ending mid-flow; return to .text and HALT.
    assemble(snippet + "\n        .text\n        HALT\n",
             predefined=symbols)


def test_snippet_count():
    # The doc carries the main example plus the two network protocols.
    assert len(assembly_snippets()) >= 2


def test_documented_device_map_matches_config():
    text = DOC.read_text()
    assert f"`0x{CFG.simd_space_base:06X}`".lower() in text.lower() or \
        "0x400000" in text
    assert "0xF00000" in text  # NETTX
    assert "0xF00002" in text  # NETRX
    assert "0xF00004" in text  # NETSTAT
    assert CFG.net_tx_addr == 0xF00000
    assert CFG.net_rx_addr == 0xF00002
    assert CFG.net_status_addr == 0xF00004
    assert CFG.simd_space_base == 0x400000


def test_documented_mnemonics_are_supported():
    from repro.m68k.instructions import ALL_MNEMONICS

    text = DOC.read_text()
    # Pull the instruction-set paragraph's upper-case words.
    section = text.split("## Supported instruction set")[1].split("##")[0]
    words = set(re.findall(r"\b[A-Z][A-Z0-9]{1,5}\b", section))
    # Generic forms in the doc (Bcc, DBcc, Scc) expand to families, and
    # the paragraph mentions a few non-mnemonic terms.
    prose = {"BCC", "DBCC", "SCC", "DBRA", "RAM", "M68000", "M68000UM",
             "PE", "MC", "FIFO"}
    words -= prose
    missing = {
        w for w in words
        if w not in ALL_MNEMONICS and not w.startswith(("B", "DB", "S"))
    }
    assert not missing, f"documented but unsupported: {sorted(missing)}"
