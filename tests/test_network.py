"""Tests for the Extra-Stage Cube network: topology, routing, circuits,
fault tolerance, and the byte-transfer fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkFaultError, RoutingConflictError
from repro.network import (
    CircuitSwitchedNetwork,
    ExtraStageCubeTopology,
    Fault,
    FaultKind,
    NetworkFabric,
    route,
)
from repro.sim import Environment


def make_net(n=16, extra=False, faults=()):
    topo = ExtraStageCubeTopology(n)
    return CircuitSwitchedNetwork(
        topo, extra_stage_enabled=extra, faults=set(faults)
    )


class TestTopology:
    def test_structure_16(self):
        topo = ExtraStageCubeTopology(16)
        assert topo.n_bits == 4
        assert topo.n_stages == 5
        assert topo.stage_bits == [0, 3, 2, 1, 0]

    def test_box_pairing(self):
        topo = ExtraStageCubeTopology(16)
        # stage 1 controls bit 3: lines 2 and 10 share a box
        assert topo.box_of(1, 2) == topo.box_of(1, 10)
        assert topo.partner(1, 2) == 10
        # extra stage controls bit 0
        assert topo.partner(0, 6) == 7

    def test_boxes_per_stage(self):
        topo = ExtraStageCubeTopology(8)
        for stage in range(topo.n_stages):
            assert len(list(topo.boxes(stage))) == 4

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ExtraStageCubeTopology(12)
        with pytest.raises(ValueError):
            ExtraStageCubeTopology(1)


class TestRouting:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=100)
    def test_route_connects_any_pair(self, s, d):
        topo = ExtraStageCubeTopology(16)
        path = route(topo, s, d)
        assert path.lines[0] == s
        assert path.lines[-1] == d
        assert len(path.lines) == topo.n_stages + 1

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=50)
    def test_each_stage_moves_one_bit_at_most(self, s, d):
        topo = ExtraStageCubeTopology(16)
        path = route(topo, s, d)
        for stage in range(topo.n_stages):
            diff = path.lines[stage] ^ path.lines[stage + 1]
            assert diff in (0, 1 << topo.stage_bit(stage))

    def test_extra_stage_gives_two_paths(self):
        topo = ExtraStageCubeTopology(16)
        a = route(topo, 5, 9, extra_stage_enabled=True, prefer_exchange=False)
        b = route(topo, 5, 9, extra_stage_enabled=True, prefer_exchange=True)
        assert not a.extra_exchanged and b.extra_exchanged
        # Interior links (between extra stage and final stage) are disjoint.
        interior_a = set(list(a.output_links())[:-1])
        interior_b = set(list(b.output_links())[:-1])
        assert not (interior_a & interior_b)

    def test_route_avoids_link_fault_via_extra_stage(self):
        topo = ExtraStageCubeTopology(16)
        straight = route(topo, 3, 12, extra_stage_enabled=True)
        # Fail the straight path's first interior link.
        stage, line = list(straight.output_links())[1]
        fault = Fault(FaultKind.LINK, stage, line)
        detour = route(topo, 3, 12, faults={fault}, extra_stage_enabled=True)
        assert detour.extra_exchanged
        assert fault not in [
            Fault(FaultKind.LINK, s, l) for s, l in detour.output_links()
        ]

    def test_route_fails_without_extra_stage(self):
        topo = ExtraStageCubeTopology(16)
        straight = route(topo, 3, 12)
        stage, line = list(straight.output_links())[1]
        with pytest.raises(NetworkFaultError):
            route(topo, 3, 12, faults={Fault(FaultKind.LINK, stage, line)})

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(1, 3),
           st.integers(0, 15))
    @settings(max_examples=100)
    def test_single_interior_box_fault_tolerated(self, s, d, stage, box_line):
        """Any single faulty interior box still leaves a route (the ESC
        single-fault-tolerance property)."""
        topo = ExtraStageCubeTopology(16)
        fault = Fault(FaultKind.BOX, *topo.box_of(stage, box_line))
        path = route(topo, s, d, faults={fault}, extra_stage_enabled=True)
        assert path.lines[-1] == d
        assert fault not in [
            Fault(FaultKind.BOX, *b) for b in path.boxes(topo)
        ] or not path.extra_exchanged  # fault must not be on the used path
        # stronger: recompute blocked-ness
        used_boxes = {topo.box_of(st_, path.lines[st_])
                      for st_ in range(topo.n_stages)}
        assert (fault.stage, fault.line) not in used_boxes


class TestCircuits:
    def test_allocate_and_release(self):
        net = make_net()
        c = net.allocate(2, 5)
        assert c.path.source == 2 and c.path.dest == 5
        assert net.active_circuits == [c]
        net.release(c)
        assert net.active_circuits == []

    def test_conflict_detected(self):
        net = make_net()
        net.allocate(0, 0)  # loopback claims straight-through links
        # Another circuit to dest 0 must collide at the final output link.
        with pytest.raises(RoutingConflictError):
            net.allocate(1, 0)

    def test_release_frees_links(self):
        net = make_net()
        c = net.allocate(0, 7)
        net.release(c)
        net.allocate(1, 7)  # would conflict at the output if not freed

    def test_double_release_rejected(self):
        net = make_net()
        c = net.allocate(0, 7)
        net.release(c)
        with pytest.raises(RoutingConflictError):
            net.release(c)

    def test_extra_stage_resolves_conflict(self):
        """With the extra stage enabled, some conflicting pairs can coexist
        by sending one circuit through the exchanged entry."""
        topo = ExtraStageCubeTopology(16)
        plain = CircuitSwitchedNetwork(topo)
        esc = CircuitSwitchedNetwork(topo, extra_stage_enabled=True)
        # Find a pair of circuits that conflicts in the plain cube.
        plain.allocate(0, 8)
        conflicted = None
        for s in range(1, 16):
            for d in range(16):
                if d == 8:
                    continue
                try:
                    c = plain.allocate(s, d)
                    plain.release(c)
                except RoutingConflictError:
                    conflicted = (s, d)
                    break
            if conflicted:
                break
        assert conflicted is not None
        esc.allocate(0, 8)
        esc.allocate(*conflicted)  # must succeed via the extra stage
        assert len(esc.active_circuits) == 2

    def test_shift_permutation_admissible_full_machine(self):
        """The algorithm's PE i → PE (i-1) mod N permutation routes
        conflict-free in one setting — the property the paper's single
        path set-up relies on."""
        net = make_net(16)
        mapping = {i: (i - 1) % 16 for i in range(16)}
        assert net.is_admissible(mapping)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_shift_permutation_admissible_all_sizes(self, n):
        net = make_net(n)
        mapping = {i: (i - 1) % n for i in range(n)}
        assert net.is_admissible(mapping)

    def test_interleaved_partition_shift_admissible(self):
        """Logical shift within a 4-PE partition on physical PEs
        {mc, mc+4, mc+8, mc+12} (the PASM MC interleave) is admissible."""
        net = make_net(16)
        for mc in range(4):
            phys = [mc + 4 * k for k in range(4)]
            mapping = {phys[i]: phys[(i - 1) % 4] for i in range(4)}
            assert net.is_admissible(mapping), f"MC group {mc}"
            net.release_all()

    def test_permutation_atomicity_on_failure(self):
        net = make_net()
        net.allocate(0, 0)
        with pytest.raises(RoutingConflictError):
            net.allocate_permutation({1: 1, 2: 0})  # 2->0 conflicts
        # The partial attempt must not leave 1->1 established.
        assert len(net.active_circuits) == 1

    def test_non_injective_mapping_rejected(self):
        net = make_net()
        with pytest.raises(RoutingConflictError, match="not distinct"):
            net.allocate_permutation({0: 3, 1: 3})


class TestFabric:
    def test_byte_delivery(self):
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=8)
        fabric.connect(2, 1)
        received = []

        def sender():
            yield from fabric.ports[2].write_tx(0xAB)
            yield from fabric.ports[2].write_tx(0xCD)

        def receiver():
            v1 = yield from fabric.ports[1].read_rx()
            v2 = yield from fabric.ports[1].read_rx()
            received.append((v1, v2, env.now))

        env.process(sender())
        p = env.process(receiver())
        env.run(until=p)
        assert received[0][:2] == (0xAB, 0xCD)

    def test_latency_charged(self):
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=10)
        fabric.connect(0, 1)

        def sender():
            yield from fabric.ports[0].write_tx(1)

        def receiver():
            yield from fabric.ports[1].read_rx()
            return env.now

        env.process(sender())
        p = env.process(receiver())
        assert env.run(until=p) == 10

    def test_status_bits(self):
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=5)
        fabric.connect(0, 1)
        port0, port1 = fabric.ports[0], fabric.ports[1]
        assert port0.tx_ready and not port1.rx_valid

        def sender():
            yield from port0.write_tx(9)

        env.process(sender())
        env.run(until=20)
        assert port1.rx_valid

    def test_sender_blocks_when_receiver_slow(self):
        """TX backpressure: with a 1-deep receive register, a burst of
        sends stalls until the receiver drains."""
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=1)
        fabric.connect(0, 1)
        send_times = []

        def sender():
            for i in range(4):
                yield from fabric.ports[0].write_tx(i)
                send_times.append(env.now)

        def receiver():
            got = []
            for _ in range(4):
                yield env.timeout(100)
                got.append((yield from fabric.ports[1].read_rx()))
            return got

        env.process(sender())
        p = env.process(receiver())
        got = env.run(until=p)
        assert got == [0, 1, 2, 3]  # order preserved, nothing lost
        # Backpressure: the pipeline (tx + in-flight + rx) holds 3 bytes, so
        # the 4th send cannot complete before the receiver's first drain.
        assert send_times[-1] >= 100

    def test_16bit_element_as_two_bytes(self):
        """A 16-bit element crosses as two byte transfers and reassembles."""
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=3)
        fabric.connect(3, 2)
        value = 0xBEEF

        def sender():
            yield from fabric.ports[3].write_tx(value & 0xFF)
            yield from fabric.ports[3].write_tx(value >> 8)

        def receiver():
            low = yield from fabric.ports[2].read_rx()
            high = yield from fabric.ports[2].read_rx()
            return (high << 8) | low

        env.process(sender())
        p = env.process(receiver())
        assert env.run(until=p) == value

    def test_counters(self):
        env = Environment()
        fabric = NetworkFabric(env, make_net(), byte_latency=1)
        fabric.connect(0, 1)

        def sender():
            yield from fabric.ports[0].write_tx(1)

        def receiver():
            yield from fabric.ports[1].read_rx()

        env.process(sender())
        p = env.process(receiver())
        env.run(until=p)
        assert fabric.ports[0].bytes_sent == 1
        assert fabric.ports[1].bytes_received == 1
