"""The fleet layer: hash ring, router proxying, ring-aware client.

Placement is the property everything hangs on — every party (router,
multi-URL client) that knows the instance list must agree where each
content hash lives, because fleet-wide single-flight dedup *is* that
agreement.  The e2e tests run a real two-instance fleet behind a real
router (all in-process threads, ephemeral ports) and assert the
contracts end to end: same key -> same instance, dedup through the
hop, dead-instance failover, correlation headers surviving the hop,
and aggregated fleet views.
"""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.exec import SimJobSpec
from repro.serve import (
    HashRing,
    RouterConfig,
    RouterThread,
    ServeClient,
    ServeConfig,
    ServerThread,
    exhibit_key,
    merge_prometheus,
    parse_instance,
    route_key,
)
from repro.serve.http import Request


def echo_spec(value):
    return SimJobSpec(program="_test", mode="serial", n=1, p=1,
                      engine="micro",
                      params=(("action", "echo"), ("value", value)))


# ---------------------------------------------------------------------------
# HashRing
class TestHashRing:
    def test_mapping_is_deterministic_and_order_free(self):
        a = HashRing(["http://h:1", "http://h:2", "http://h:3"])
        b = HashRing(["http://h:3", "http://h:1", "http://h:2"])
        for i in range(200):
            assert a.node_for(f"key-{i}") == b.node_for(f"key-{i}")

    def test_load_spreads_over_instances(self):
        ring = HashRing([f"http://h:{p}" for p in range(1, 5)])
        counts = {node: 0 for node in ring.nodes}
        for i in range(4000):
            counts[ring.node_for(f"key-{i}")] += 1
        assert min(counts.values()) > 0
        # Virtual nodes keep the spread sane: no instance owns more
        # than half of a 4-instance keyspace.
        assert max(counts.values()) < 2000

    def test_removing_a_node_only_remaps_its_keys(self):
        nodes = [f"http://h:{p}" for p in range(1, 5)]
        full = HashRing(nodes)
        reduced = HashRing(nodes[:-1])
        moved = 0
        for i in range(2000):
            key = f"key-{i}"
            before = full.node_for(key)
            after = reduced.node_for(key)
            if before == nodes[-1]:
                assert after != nodes[-1]  # its keys must move
            else:
                assert after == before  # everyone else stays put
                continue
            moved += 1
        # ~1/4 of the keyspace lived on the removed node.
        assert 0 < moved < 1000

    def test_nodes_for_walks_every_instance_once(self):
        ring = HashRing([f"http://h:{p}" for p in range(1, 5)])
        order = list(ring.nodes_for("some-key"))
        assert sorted(order) == sorted(ring.nodes)
        assert order[0] == ring.node_for("some-key")

    def test_duplicates_collapse_and_empty_rejects(self):
        assert len(HashRing(["http://h:1", "http://h:1"])) == 1
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing(["http://h:1"], replicas=0)


class TestParseInstance:
    def test_normalizes_to_one_identity(self):
        expect = ("http://box:8137", "box", 8137)
        for text in ("http://box:8137", "box:8137", "http://box:8137/",
                     "https://box:8137", " box:8137 "):
            assert parse_instance(text) == expect

    def test_rejects_garbage(self):
        for text in ("", "box", "box:", ":8137", "box:notaport"):
            with pytest.raises(ConfigurationError):
                parse_instance(text)


# ---------------------------------------------------------------------------
# Routing keys: the router must derive the broker's own job key
class TestRouteKey:
    def _post(self, doc):
        return Request(method="POST", path="/v1/jobs", query={},
                       headers={}, body=json.dumps(doc).encode())

    def test_submission_routes_by_spec_content_hash(self):
        spec = echo_spec("route-me")
        request = self._post({"spec": spec.to_dict(), "lane": "sweep"})
        assert route_key(request) == spec.content_hash

    def test_exhibit_submission_routes_by_exhibit_key(self):
        request = self._post({"exhibit": "fig7", "seed": 3})
        assert route_key(request) == exhibit_key("fig7", 3)

    def test_job_paths_carry_the_key_literally(self):
        key = "a" * 64
        for path in (f"/v1/jobs/{key}", f"/v1/jobs/{key}/trace"):
            request = Request(method="GET", path=path, query={},
                              headers={})
            assert route_key(request) == key

    def test_exhibit_get_matches_exhibit_submission(self):
        request = Request(method="GET", path="/v1/exhibits/fig7",
                          query={"seed": "3"}, headers={})
        assert route_key(request) == exhibit_key("fig7", 3)
        bare = Request(method="GET", path="/v1/exhibits/fig7",
                       query={}, headers={})
        assert route_key(bare) == exhibit_key("fig7", None)

    def test_malformed_bodies_route_stably(self):
        bad = Request(method="POST", path="/v1/jobs", query={},
                      headers={}, body=b"{not json")
        assert route_key(bad) == route_key(bad)
        # ...and differently from other garbage.
        other = Request(method="POST", path="/v1/jobs", query={},
                        headers={}, body=b"{other garbage")
        assert route_key(bad) != route_key(other)


# ---------------------------------------------------------------------------
# Prometheus aggregation
class TestMergePrometheus:
    def test_sums_matching_series_and_keeps_meta_once(self):
        a = ("# HELP x Things\n# TYPE x counter\n"
             'x{lane="a"} 3\nx{lane="b"} 1\n')
        b = ("# HELP x Things\n# TYPE x counter\n"
             'x{lane="a"} 4\n')
        merged = merge_prometheus([a, b])
        assert 'x{lane="a"} 7' in merged
        assert 'x{lane="b"} 1' in merged
        assert merged.count("# HELP x Things") == 1

    def test_ratio_gauges_average_instead_of_sum(self):
        pages = ["cache_hit_ratio 0.5\n", "cache_hit_ratio 1\n"]
        assert "cache_hit_ratio 0.75" in merge_prometheus(pages)

    def test_single_instance_page_passes_through(self):
        page = "hit_ratio 0.25\nrequests 9\n"
        merged = merge_prometheus([page])
        assert "hit_ratio 0.25" in merged
        assert "requests 9" in merged


# ---------------------------------------------------------------------------
# Config
class TestRouterConfig:
    def test_needs_instances(self):
        with pytest.raises(ConfigurationError, match="--instance"):
            RouterConfig(instances=())

    def test_rejects_nonpositive_timeouts(self):
        with pytest.raises(ConfigurationError, match="cooldown_s"):
            RouterConfig(instances=("http://h:1",), cooldown_s=0)


# ---------------------------------------------------------------------------
# End to end: a real two-instance fleet behind a real router
@pytest.fixture(scope="class")
def fleet(request, tmp_path_factory):
    """Two pasm-serve instances sharing one store, plus the router."""
    store = tmp_path_factory.mktemp("fleet-store")
    servers = [
        ServerThread(ServeConfig(port=0, jobs=1, cache_dir=str(store),
                                 instance=name))
        for name in ("alpha", "beta")
    ]
    for server in servers:
        server.start()
    bases = [f"http://127.0.0.1:{s.port}" for s in servers]
    router = RouterThread(RouterConfig(instances=tuple(bases), port=0,
                                       upstream_timeout_s=60.0))
    router.start()
    request.cls.servers = servers
    request.cls.bases = bases
    request.cls.router = router
    yield
    router.stop()
    for server in servers:
        server.stop()


@pytest.mark.usefixtures("fleet")
class TestFleetEndToEnd:
    servers: list
    bases: list
    router: RouterThread

    def client(self, **kwargs):
        return ServeClient(port=self.router.port, **kwargs)

    def test_identical_jobs_land_on_one_instance(self):
        client = self.client()
        spec = echo_spec("placement")
        owner = self.router.app.ring.node_for(spec.content_hash)
        seen = set()
        for _ in range(3):
            doc = client.submit(spec, wait=True)
            assert doc["state"] == "done"
            reply = client.request(
                "GET", f"/v1/jobs/{spec.content_hash}")
            seen.add(reply.headers["x-pasm-instance"])
        assert seen == {owner}

    def test_second_submission_dedups_through_the_router(self):
        client = self.client()
        spec = echo_spec("dedup-hop")
        first = client.submit(spec, wait=True)
        second = client.submit(spec, wait=True)
        assert first["state"] == second["state"] == "done"
        # In-flight dedup, the in-memory registry or the shared store —
        # any of them proves the second submission did not recompute.
        assert second["outcome"] in ("dedup", "memo", "cached")
        assert second["result"] == first["result"]

    def test_shared_store_serves_warm_results_cross_instance(self):
        spec = echo_spec("cross-instance-warmth")
        owner = self.router.app.ring.node_for(spec.content_hash)
        other = next(b for b in self.bases if b != owner)
        # Compute on the owner (via the router), then ask the *other*
        # instance directly: the shared store must answer "cached"
        # without a ring hop or a recompute.
        assert self.client().submit(spec, wait=True)["state"] == "done"
        _, host, port = parse_instance(other)
        direct = ServeClient(host, port)
        doc = direct.submit(spec, wait=True)
        assert doc["state"] == "done"
        assert doc["outcome"] == "cached"

    def test_correlation_survives_the_hop(self):
        client = self.client(trace=True)
        reply = client.request("GET", "/healthz")
        assert reply.request_id() == client.last_request_id
        assert reply.headers["x-request-id"] == client.last_request_id

    def test_fleet_healthz_reports_every_instance(self):
        doc = self.client().healthz()
        assert doc["status"] == "ok"
        assert set(doc["instances"]) == set(self.bases)
        names = {doc["instances"][b]["instance"] for b in self.bases}
        assert names == {"alpha", "beta"}
        assert doc["ring"] == {"instances": 2, "replicas": 64}

    def test_fleet_metrics_aggregate_the_instances(self):
        client = self.client()
        client.submit(echo_spec("metrics-fodder"), wait=True)
        page = client.metrics()
        assert "pasm_router_requests_total" in page
        assert "pasm_router_instances 2" in page
        # Instance pages are merged in (summed), not replaced.
        assert "pasm_serve_submitted_total" in page

    def test_fleet_stats_concatenate_per_instance(self):
        text = self.client().stats()
        for base in self.bases:
            assert f"== {base} ==" in text

    def test_ring_client_agrees_with_router_placement(self):
        client = ServeClient(base_urls=self.bases)
        for i in range(20):
            key = echo_spec(f"agree-{i}").content_hash
            owner = self.router.app.ring.node_for(key)
            assert client._targets(key)[0] == parse_instance(owner)[1:]

    def test_ring_client_runs_jobs_without_the_router(self):
        client = ServeClient(base_urls=self.bases)
        spec = echo_spec("client-direct")
        assert client.run(spec)["value"] == "client-direct"
        # The job lives on the ring owner, findable by any party.
        owner = self.router.app.ring.node_for(spec.content_hash)
        _, host, port = parse_instance(owner)
        doc = ServeClient(host, port).status(spec.content_hash)
        assert doc["state"] == "done"


# ---------------------------------------------------------------------------
# Failover: a dead instance is routed around
class TestFailover:
    def test_router_and_ring_client_survive_a_dead_instance(self, tmp_path):
        config = ServeConfig(port=0, jobs=1, cache_dir=str(tmp_path))
        with ServerThread(config) as alive:
            base_alive = f"http://127.0.0.1:{alive.port}"
            with ServerThread(config.with_overrides()) as doomed:
                base_doomed = f"http://127.0.0.1:{doomed.port}"
                bases = (base_alive, base_doomed)
                router = RouterThread(RouterConfig(
                    instances=bases, port=0, upstream_timeout_s=30.0,
                    cooldown_s=0.2,
                ))
                router.start()
                try:
                    doomed.stop()
                    # Every key — including those owned by the dead
                    # instance — must still be served, by the survivor.
                    via_router = ServeClient(port=router.port)
                    for i in range(4):
                        spec = echo_spec(f"failover-{i}")
                        reply = via_router.request(
                            "POST", "/v1/jobs?wait=1&timeout=30",
                            doc={"spec": spec.to_dict()},
                        )
                        assert reply.status == 200
                        assert (reply.headers["x-pasm-instance"]
                                == base_alive)
                    health = via_router.healthz()
                    assert health["status"] == "degraded"
                    doomed_doc = health["instances"][base_doomed]
                    assert doomed_doc["status"] == "unreachable"
                    metrics = via_router.metrics()
                    assert "pasm_router_failovers_total" in metrics
                    # The ring-aware client walks the same failover
                    # order on its own.
                    direct = ServeClient(base_urls=list(bases),
                                         max_retries=3)
                    for i in range(4):
                        payload = direct.run(echo_spec(f"direct-{i}"))
                        assert payload["value"] == f"direct-{i}"
                finally:
                    router.stop()

    def test_whole_fleet_down_is_503_with_retry_after(self):
        # Port 1 on localhost: nothing listens there.
        router = RouterThread(RouterConfig(
            instances=("http://127.0.0.1:1",), upstream_timeout_s=5.0,
            retry_after_s=2.0, port=0,
        ))
        router.start()
        try:
            client = ServeClient(port=router.port, max_retries=0)
            spec = echo_spec("nobody-home")
            with pytest.raises(Exception) as err:
                client.submit(spec)
            assert "503" in str(err.value) or "refused" in str(err.value)
        finally:
            router.stop()
