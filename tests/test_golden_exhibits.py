"""Golden-exhibit regression suite.

Regenerates the committed exhibits — Table 1, the Figure 7 crossover,
Figures 11 and 12, and the MULS extension — and asserts row-for-row
equality against the JSON files under ``results/``.  Any change to the
simulator, the timing model, or the data generator that moves a single
published number fails here first.

The exhibits are regenerated through a pooled, cached execution engine,
so this suite also locks in the engine-equivalence contract: pooled
output must be bit-identical to the serial path that produced the
committed files.
"""

import json
from pathlib import Path

import pytest

from repro.core import DecouplingStudy
from repro.exec import ExecutionEngine, ResultCache
from repro.experiments.runner import EXPERIMENTS

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: The committed exhibits this suite guards (cheap enough to regenerate
#: on every test run; fig6/fig8-10 are covered structurally elsewhere).
GOLDEN = ("table1", "fig7", "fig11", "fig12", "ext-muls", "ext-faults")


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("golden-cache"),
                        version="golden")
    return DecouplingStudy(exec_engine=ExecutionEngine(jobs=2, cache=cache))


@pytest.fixture(scope="module")
def committed():
    return {
        name: json.loads((RESULTS_DIR / f"{name}.json").read_text())
        for name in GOLDEN
    }


@pytest.mark.parametrize("name", GOLDEN)
def test_exhibit_matches_committed_rows(name, study, committed):
    fresh = json.loads(EXPERIMENTS[name](study).to_json())
    golden = committed[name]
    assert fresh["headers"] == golden["headers"], f"{name}: headers drifted"
    assert len(fresh["rows"]) == len(golden["rows"]), (
        f"{name}: {len(fresh['rows'])} rows regenerated, "
        f"{len(golden['rows'])} committed"
    )
    for i, (got, want) in enumerate(zip(fresh["rows"], golden["rows"])):
        assert got == want, (
            f"{name} row {i} drifted:\n  regenerated: {got}\n"
            f"  committed:   {want}"
        )
    # Row equality is the headline; the full document (title, notes,
    # series) must match too so no metadata drifts silently.
    assert fresh == golden, f"{name}: non-row fields drifted"


def test_committed_files_exist():
    missing = [n for n in GOLDEN if not (RESULTS_DIR / f"{n}.json").exists()]
    assert not missing, f"golden files missing from results/: {missing}"


def test_ext_faults_identical_across_job_counts(committed):
    """The fault campaign schedules sweeps and degraded runs through the
    pool; its rows must be bit-identical at any ``--jobs`` setting (and
    equal to the committed serial-run golden)."""
    rows = {}
    for jobs in (1, 4):
        study = DecouplingStudy(exec_engine=ExecutionEngine(jobs=jobs))
        result = json.loads(EXPERIMENTS["ext-faults"](study).to_json())
        rows[jobs] = result["rows"]
    assert rows[1] == rows[4]
    assert rows[1] == committed["ext-faults"]["rows"]
