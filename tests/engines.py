"""Shared engine-matrix helpers for the differential test suites.

The repo has four micro-engine tiers that must be bit-identical in
everything perf-visible (see DESIGN.md, "Engine tiers"):

* ``pure-events`` — every charge is a heap event (``fast_path=False``);
* ``local-time``  — private charges accrue on per-bus local clocks and
  flush at shared interactions (``fast_path=True``);
* ``lockstep``    — local-time plus the batched SIMD rendezvous: the
  queue computes each release instant directly and resumes the enabled
  set as a batch (``fast_path=True, lockstep=True``), here pinned to
  scalar per-PE execution (``vectorized=False``);
* ``vectorized``  — lockstep plus ``repro.sim.vectorized``: broadcast
  words decode once and execute across the whole enabled mask over
  numpy-backed per-PE state, falling back to scalar release at any
  word the vector engine cannot prove equivalent.

:func:`signature` captures everything a user of the simulator can
observe — cycle counts, per-PE finish times and category breakdowns,
instruction counts, the result matrix, queue statistics, and MC busy
accounting — so ``signature(e1) == signature(e2)`` is the full
equivalence claim, not just makespan equality.

The module doubles as a pytest plugin: the :func:`engine` /
:func:`engine_pair` / :func:`mode_and_p` fixtures parametrize over the
matrix with stable IDs (``vectorized``, ``SIMD`` …) so a failing case
names its tier and mode directly in the test ID.
"""

from __future__ import annotations

import pytest

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs.data import generate_matrices
from repro.programs.loader import build_matmul, run_matmul

CFG = PrototypeConfig.calibrated()

#: Engine tier name -> PASMMachine constructor flags.  Every tier pins
#: all three flags explicitly so the matrix is immune to REPRO_LOCKSTEP
#: / REPRO_VECTORIZED environment overrides leaking into tests.
ENGINES = {
    "pure-events": {"fast_path": False, "lockstep": False,
                    "vectorized": False},
    "local-time": {"fast_path": True, "lockstep": False,
                   "vectorized": False},
    "lockstep": {"fast_path": True, "lockstep": True, "vectorized": False},
    "vectorized": {"fast_path": True, "lockstep": True, "vectorized": True},
}

#: All tier names, in cost order (the differential suites iterate this).
ENGINE_TIERS = list(ENGINES)

#: Reference tier every other tier is compared against.
BASELINE_ENGINE = "pure-events"

#: The canonical (mode, partition size) matrix.
ALL_MODES = [
    (ExecutionMode.SERIAL, 1),
    (ExecutionMode.SIMD, 4),
    (ExecutionMode.SMIMD, 4),
    (ExecutionMode.MIMD, 4),
]

MODE_IDS = [m.name for m, _ in ALL_MODES]


@pytest.fixture(params=ENGINE_TIERS, ids=ENGINE_TIERS)
def engine(request) -> str:
    """Each engine tier in turn; the test ID carries the tier name."""
    return request.param


@pytest.fixture(params=[t for t in ENGINE_TIERS if t != BASELINE_ENGINE],
                ids=[t for t in ENGINE_TIERS if t != BASELINE_ENGINE])
def engine_pair(request) -> tuple[str, str]:
    """(baseline, candidate) pairs for differential tests — every
    non-baseline tier against ``pure-events``, IDs naming the candidate."""
    return BASELINE_ENGINE, request.param


@pytest.fixture(params=ALL_MODES, ids=MODE_IDS)
def mode_and_p(request) -> tuple[ExecutionMode, int]:
    """The canonical (mode, partition size) matrix as a fixture."""
    return request.param


def make_machine(p: int, engine: str = "lockstep", *, cfg=None,
                 fault_plan=None) -> PASMMachine:
    """A machine configured for the named engine tier."""
    return PASMMachine(cfg or CFG, partition_size=p, fault_plan=fault_plan,
                       **ENGINES[engine])


def run_matmul_on(mode: ExecutionMode, n: int, p: int, engine: str, *,
                  m: int = 0, cfg=None, fault_plan=None, b_bits=None):
    """Run the pinned matmul workload on one engine tier.

    Returns ``(machine, run)`` so callers can inspect counters beyond
    the :class:`MachineResult`.  ``m`` adds data-dependent multiplies to
    the inner loop (the Figure 7 knob); ``b_bits`` widens the B-matrix
    operands (more MULU timing variance).
    """
    cfg = cfg or CFG
    kwargs = {} if b_bits is None else {"b_bits": b_bits, "b_max": 1 << b_bits}
    a, b = generate_matrices(n, **kwargs)
    bundle = build_matmul(mode, n, p, added_multiplies=m,
                          device_symbols=cfg.device_symbols())
    machine = make_machine(p, engine, cfg=cfg, fault_plan=fault_plan)
    run = run_matmul(machine, bundle, a, b)
    return machine, run


def result_signature(machine: PASMMachine, result) -> dict:
    """The perf-visible fingerprint of a finished machine + result."""
    p = machine.p
    return {
        "cycles": result.cycles,
        "per_pe": result.per_pe_cycles,
        "cats": result.per_pe_categories,
        "icount": [machine.pe(i).cpu.instruction_count for i in range(p)],
        "finish": [machine.pe(i).cpu.finish_time for i in range(p)],
        "queue_stats": result.queue_stats,
        "mc_stats": result.mc_stats,
    }


def signature(mode: ExecutionMode, n: int, p: int, engine: str, *,
              m: int = 0, cfg=None, fault_plan=None, b_bits=None) -> dict:
    """Everything an engine tier could possibly perturb, in one dict."""
    machine, run = run_matmul_on(mode, n, p, engine, m=m, cfg=cfg,
                                 fault_plan=fault_plan, b_bits=b_bits)
    sig = result_signature(machine, run.result)
    sig["product"] = run.product.tolist()
    return sig
