"""Smoke tests for the public API surface and package hygiene."""

import importlib
import pkgutil

import pytest

import repro


ALL_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
]


@pytest.mark.parametrize("module", ALL_MODULES)
def test_every_module_imports(module):
    importlib.import_module(module)


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version():
    assert repro.__version__ == "1.2.0"


def test_all_public_names_resolve():
    """Every name in every subpackage's __all__ must exist."""
    for module_name in ALL_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


def test_quickstart_snippet_from_readme():
    """The README's quickstart code must actually run."""
    from repro import DecouplingStudy, ExecutionMode, find_crossover

    study = DecouplingStudy()
    r = study.run(ExecutionMode.SIMD, n=16, p=4, engine="micro")
    assert r.cycles > 0 and r.breakdown
    eff = study.efficiency(ExecutionMode.SIMD, n=256, p=4)
    assert eff > 1.0
    crossover = find_crossover(study, n=64, p=4).crossover
    assert 12 <= crossover <= 16


def test_machine_refuses_second_run():
    from repro import PASMMachine, PrototypeConfig
    from repro.errors import ConfigurationError
    from repro.m68k.assembler import assemble

    machine = PASMMachine(PrototypeConfig(), partition_size=1)
    prog = assemble("    NOP\n    HALT")
    machine.run_serial(prog)
    with pytest.raises(ConfigurationError, match="already ran"):
        machine.run_serial(prog)


def test_py_typed_marker_exists():
    from pathlib import Path

    assert (Path(repro.__file__).parent / "py.typed").exists()
