"""Tests for the sweep utilities and the disassembler."""

import pytest

from repro.core import DecouplingStudy
from repro.experiments.sweeps import (
    CrossoverConfidence,
    crossover_confidence,
    sweep,
    sweep_to_csv,
)
from repro.m68k.assembler import assemble
from repro.m68k.disasm import disassemble, static_timing_note
from repro.machine import ExecutionMode, PrototypeConfig

CFG = PrototypeConfig()


class TestSweep:
    @pytest.fixture(scope="class")
    def records(self):
        study = DecouplingStudy()
        return sweep(
            study,
            modes=(ExecutionMode.SIMD, ExecutionMode.MIMD),
            sizes=(16, 64),
            processor_counts=(4, 8),
            added_multiplies=(0, 5),
        )

    def test_cell_count(self, records):
        # 2 modes x 2 sizes x 2 p x 2 m, all feasible.
        assert len(records) == 16

    def test_infeasible_cells_skipped(self):
        study = DecouplingStudy()
        records = sweep(
            study, modes=(ExecutionMode.SIMD,), sizes=(4,),
            processor_counts=(8,),
        )
        assert records == []  # n=4 < p=8

    def test_records_have_breakdowns(self, records):
        for r in records:
            assert r.cycles > 0
            assert sum(r.breakdown.values()) == pytest.approx(r.cycles)

    def test_csv_format(self, records):
        csv = sweep_to_csv(records)
        lines = csv.strip().splitlines()
        assert len(lines) == len(records) + 1
        assert lines[0].startswith("mode,n,p,")
        assert "cycles_mult" in lines[0]

    def test_added_multiplies_increase_cycles(self, records):
        base = {(r.mode, r.n, r.p): r.cycles for r in records
                if r.added_multiplies == 0}
        for r in records:
            if r.added_multiplies == 5:
                assert r.cycles > base[(r.mode, r.n, r.p)]


class TestCrossoverConfidence:
    @pytest.fixture(scope="class")
    def conf(self):
        return crossover_confidence(CFG, seeds=(1, 2, 3))

    def test_all_seeds_in_paper_band(self, conf):
        lo, hi = conf.spread
        assert 11 <= lo <= hi <= 17

    def test_statistics(self, conf):
        assert len(conf.values) == 3
        assert lo_le_mean_le_hi(conf)
        assert conf.std < 2.0  # the crossover is a stable property

    def test_str(self, conf):
        text = str(conf)
        assert "added multiplies" in text and "seeds" in text


def lo_le_mean_le_hi(conf: CrossoverConfidence) -> bool:
    lo, hi = conf.spread
    return lo <= conf.mean <= hi


class TestDisassembler:
    def test_listing_with_symbols_and_timing(self):
        prog = assemble(
            """
    start:  MOVE.W  #3,D0
    loop:   MULU    D0,D1
            MOVE.B  D0,NETTX
            DBRA    D2,loop
            BEQ     start
            HALT
            """,
            predefined=CFG.device_symbols(),
        )
        text = disassemble(prog, device_symbols=CFG.device_symbols())
        assert "NETTX" in text  # device address symbolized
        assert "data-dependent" in text  # MULU range annotation
        assert "loop/exit" in text  # DBRA outcomes
        assert "taken/not" in text  # Bcc outcomes
        assert "start:" in text and "loop" in text

    def test_branch_targets_symbolized(self):
        prog = assemble("top:  NOP\n    BRA top\n    HALT")
        text = disassemble(prog)
        assert "BRA top" in text

    def test_timing_note_plain_instruction(self):
        prog = assemble("    MOVE.W D0,D1\n    HALT")
        note = static_timing_note(prog.instruction_list()[0])
        assert note.startswith("4 cyc")

    def test_without_timing(self):
        prog = assemble("    NOP\n    HALT")
        text = disassemble(prog, with_timing=False)
        assert ";" not in text

    def test_mulu_note_bounds(self):
        prog = assemble("    MULU D0,D1\n    HALT")
        note = static_timing_note(prog.instruction_list()[0])
        assert "38-70" in note
