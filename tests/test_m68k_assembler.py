"""Assembler tests: parsing, layout, symbols, directives, diagnostics."""

import pytest

from repro.errors import AssemblerError
from repro.m68k.addressing import Mode
from repro.m68k.assembler import assemble
from repro.m68k.instructions import Size


def first(program):
    return program.instruction_list()[0]


class TestOperandParsing:
    def parse_one(self, operand_text, mnemonic="TST.W"):
        prog = assemble(f"    {mnemonic} {operand_text}\n    HALT")
        return first(prog).operands[0]

    def test_data_register(self):
        op = self.parse_one("D3")
        assert op.mode is Mode.DREG and op.reg == 3

    def test_address_register_via_move(self):
        prog = assemble("    MOVE.W A5,D0\n    HALT")
        assert first(prog).operands[0].mode is Mode.AREG

    def test_indirect(self):
        op = self.parse_one("(A2)")
        assert op.mode is Mode.IND and op.reg == 2

    def test_postincrement(self):
        op = self.parse_one("(A4)+")
        assert op.mode is Mode.POSTINC and op.reg == 4

    def test_predecrement(self):
        op = self.parse_one("-(A1)")
        assert op.mode is Mode.PREDEC and op.reg == 1

    def test_displacement(self):
        op = self.parse_one("12(A3)")
        assert op.mode is Mode.DISP and op.reg == 3 and op.disp == 12

    def test_negative_displacement(self):
        op = self.parse_one("-4(A3)")
        assert op.mode is Mode.DISP and op.disp == -4

    def test_hex_displacement(self):
        op = self.parse_one("$10(A0)")
        assert op.disp == 16

    def test_index_mode(self):
        op = self.parse_one("4(A1,D2.W)")
        assert op.mode is Mode.INDEX
        assert op.reg == 1 and op.disp == 4 and op.index_reg == ("D", 2)

    def test_immediate_via_move(self):
        prog = assemble("    MOVE.W #42,D0\n    HALT")
        op = first(prog).operands[0]
        assert op.mode is Mode.IMM and op.value == 42

    def test_immediate_hex(self):
        prog = assemble("    MOVE.W #$FF,D0\n    HALT")
        assert first(prog).operands[0].value == 255

    def test_immediate_binary(self):
        prog = assemble("    MOVE.W #%1010,D0\n    HALT")
        assert first(prog).operands[0].value == 10

    def test_absolute_long_bare_symbol(self):
        prog = assemble(
            "    MOVE.W var,D0\n    HALT\n    .data\nvar: .dc.w 7"
        )
        op = first(prog).operands[0]
        assert op.mode is Mode.ABS_L
        assert op.value == 0x8000  # default data origin

    def test_absolute_short_suffix(self):
        op = self.parse_one("$400.W")
        assert op.mode is Mode.ABS_W and op.value == 0x400

    def test_sp_aliases(self):
        prog = assemble("    MOVE.W D0,-(SP)\n    MOVE.W (SP)+,D1\n    HALT")
        instrs = prog.instruction_list()
        assert instrs[0].operands[1].mode is Mode.PREDEC
        assert instrs[0].operands[1].reg == 7
        assert instrs[1].operands[0].mode is Mode.POSTINC


class TestLayoutAndSymbols:
    def test_addresses_advance_by_encoded_bytes(self):
        prog = assemble(
            """
            MOVEQ   #1,D0        ; 1 word
            MOVE.W  #5,D1        ; 2 words
            MOVE.W  D1,$2000     ; 3 words (abs.L dest)
            HALT
            """,
            text_origin=0x1000,
        )
        addrs = sorted(prog.instructions)
        assert addrs == [0x1000, 0x1002, 0x1006, 0x100C]

    def test_labels_resolve_to_addresses(self):
        prog = assemble(
            """
    start:  MOVEQ #0,D0
    loop:   ADDQ.W #1,D0
            DBRA D1,loop
            HALT
            """
        )
        assert prog.symbols["start"] == 0x1000
        assert prog.symbols["loop"] == 0x1002
        dbra = [i for i in prog.instruction_list() if i.mnemonic == "DBRA"][0]
        assert dbra.target == prog.symbols["loop"]

    def test_forward_reference(self):
        prog = assemble(
            """
            BRA  done
            NOP
    done:   HALT
            """
        )
        bra = first(prog)
        assert bra.target == prog.symbols["done"]

    def test_equ_and_expressions(self):
        prog = assemble(
            """
            .equ  BASE, $4000
            .equ  OFF, 8
            MOVE.W BASE+OFF,D0
            MOVE.W #BASE-OFF,D1
            HALT
            """
        )
        instrs = prog.instruction_list()
        assert instrs[0].operands[0].value == 0x4008
        assert instrs[1].operands[0].value == 0x4000 - 8

    def test_predefined_symbols(self):
        prog = assemble(
            "    MOVE.W D0,NETTX\n    HALT", predefined={"NETTX": 0xFF0000}
        )
        assert first(prog).operands[1].value == 0xFF0000

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:  NOP\nx:  HALT")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("    MOVE.W nowhere,D0\n    HALT")

    def test_entry_is_first_instruction(self):
        prog = assemble("    .org $2000\n    NOP\n    HALT")
        assert prog.entry == 0x2000


class TestDataSection:
    def test_dc_w(self):
        prog = assemble(
            """
            HALT
            .data
    tbl:    .dc.w  1,2,$FFFF
            """
        )
        assert prog.data == [(0x8000, bytes([0, 1, 0, 2, 0xFF, 0xFF]))]

    def test_dc_negative_value_wraps(self):
        prog = assemble("    HALT\n    .data\nv: .dc.w -1")
        assert prog.data[0][1] == b"\xff\xff"

    def test_ds_reserves_space(self):
        prog = assemble(
            """
            HALT
            .data
    a:      .ds.w  4
    b:      .dc.w  9
            """
        )
        assert prog.symbols["b"] == 0x8000 + 8

    def test_dc_in_text_rejected(self):
        with pytest.raises(AssemblerError, match="only allowed in .data"):
            assemble("    .dc.w 1")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble("    .data\n    NOP")


class TestDirectivesAndDiagnostics:
    def test_timecat_tags_instructions(self):
        prog = assemble(
            """
            .timecat control
            MOVEQ #0,D0
            .timecat mult
            MULU  D1,D2
            HALT
            """
        )
        instrs = prog.instruction_list()
        assert instrs[0].timecat == "control"
        assert instrs[1].timecat == "mult"
        assert instrs[2].timecat == "mult"  # sticky until changed

    def test_unknown_timecat_rejected(self):
        with pytest.raises(AssemblerError, match="unknown .timecat"):
            assemble("    .timecat bogus\n    NOP")

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("    NOP\n    FROB D0\n    HALT")

    def test_operand_validation_reports_line(self):
        with pytest.raises(AssemblerError):
            assemble("    MULU D0,A1\n    HALT")  # dest must be Dn

    def test_comments_and_blank_lines(self):
        prog = assemble(
            """
    * full-line comment
            NOP        ; trailing comment

            HALT
            """
        )
        assert len(prog.instructions) == 2

    def test_branch_size_suffix_tolerated(self):
        prog = assemble("loop:  BNE.S loop\n    HALT")
        assert first(prog).mnemonic == "BNE"

    def test_default_size_is_word(self):
        prog = assemble("    ADD D0,D1\n    HALT")
        assert first(prog).size is Size.WORD

    def test_listing_contains_addresses(self):
        prog = assemble("start:  NOP\n    HALT")
        listing = prog.listing()
        assert "start:" in listing and "NOP" in listing
