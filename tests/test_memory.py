"""Tests for the memory subsystem (modules, map, DRAM refresh)."""

import numpy as np
import pytest

from repro.errors import AddressError, BusError
from repro.memory import MemoryMap, MemoryModule, RefreshModel, Region, RegionKind


class TestMemoryModule:
    def test_word_roundtrip_big_endian(self):
        m = MemoryModule(64)
        m.write(0, 0x1234, 2)
        assert m.data[0] == 0x12 and m.data[1] == 0x34
        assert m.read(0, 2) == 0x1234

    def test_long_roundtrip(self):
        m = MemoryModule(64)
        m.write(4, 0xDEADBEEF, 4)
        assert m.read(4, 4) == 0xDEADBEEF
        assert m.read(4, 2) == 0xDEAD

    def test_byte_access(self):
        m = MemoryModule(8)
        m.write(3, 0xAB, 1)
        assert m.read(3, 1) == 0xAB

    def test_base_offset(self):
        m = MemoryModule(16, base=0x4000)
        m.write(0x4002, 7, 2)
        assert m.read(0x4002, 2) == 7

    def test_out_of_range(self):
        m = MemoryModule(16, base=0x4000)
        with pytest.raises(AddressError):
            m.read(0x3FFE, 2)
        with pytest.raises(AddressError):
            m.write(0x4010, 1, 2)

    def test_misaligned_word(self):
        m = MemoryModule(16)
        with pytest.raises(AddressError):
            m.read(1, 2)

    def test_value_truncation(self):
        m = MemoryModule(8)
        m.write(0, 0x1_FFFF, 2)
        assert m.read(0, 2) == 0xFFFF

    def test_word_array_roundtrip(self):
        m = MemoryModule(64)
        values = np.array([1, 2, 0xFFFF, 42], dtype=np.uint16)
        m.write_words(8, values)
        out = m.read_words(8, 4)
        assert np.array_equal(out, values)
        assert m.read(8, 2) == 1  # big-endian layout confirmed

    def test_load_blob(self):
        m = MemoryModule(8)
        m.load(2, b"\x01\x02")
        assert m.read(2, 2) == 0x0102


class TestMemoryMap:
    def make_map(self):
        return MemoryMap(
            [
                Region(RegionKind.MAIN_RAM, 0x0, 0x1_0000, wait_states=1),
                Region(RegionKind.SIMD_SPACE, 0xE0_0000, 0xE1_0000),
                Region(RegionKind.NET_TX, 0xF0_0000, 0xF0_0002),
                Region(RegionKind.NET_RX, 0xF0_0002, 0xF0_0004),
            ]
        )

    def test_lookup(self):
        mm = self.make_map()
        assert mm.lookup(0x100).kind is RegionKind.MAIN_RAM
        assert mm.lookup(0xE0_1234).kind is RegionKind.SIMD_SPACE
        assert mm.lookup(0xF0_0000).kind is RegionKind.NET_TX
        assert mm.lookup(0xF0_0003).kind is RegionKind.NET_RX

    def test_unmapped_raises(self):
        mm = self.make_map()
        with pytest.raises(BusError):
            mm.lookup(0x50_0000)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            MemoryMap(
                [
                    Region(RegionKind.MAIN_RAM, 0, 0x100),
                    Region(RegionKind.SIMD_SPACE, 0x80, 0x200),
                ]
            )

    def test_find_by_kind(self):
        mm = self.make_map()
        assert mm.find(RegionKind.NET_TX).start == 0xF0_0000
        with pytest.raises(KeyError):
            mm.find(RegionKind.TIMER)

    def test_region_contains(self):
        r = Region(RegionKind.MAIN_RAM, 0x10, 0x20)
        assert 0x10 in r and 0x1F in r and 0x20 not in r
        assert r.size == 0x10


class TestRefreshModel:
    def test_disabled_by_default(self):
        r = RefreshModel()
        assert r.stall_cycles(123.0) == 0.0
        assert r.average_stall_per_access == 0.0

    def test_stall_inside_window(self):
        r = RefreshModel(period=100, steal=4)
        assert r.stall_cycles(0.0) == 4.0
        assert r.stall_cycles(1.0) == 3.0
        assert r.stall_cycles(3.5) == 0.5
        assert r.stall_cycles(4.0) == 0.0
        assert r.stall_cycles(99.0) == 0.0
        assert r.stall_cycles(100.0) == 4.0  # next period

    def test_average_stall(self):
        r = RefreshModel(period=100, steal=4)
        assert r.average_stall_per_access == pytest.approx(16 / 200)
        assert r.duty == pytest.approx(0.04)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RefreshModel(period=0, steal=0)
        with pytest.raises(ValueError):
            RefreshModel(period=10, steal=10)

    def test_average_matches_empirical_mean(self):
        r = RefreshModel(period=50, steal=5)
        times = np.linspace(0, 50, 10_001)[:-1]
        empirical = np.mean([r.stall_cycles(t) for t in times])
        assert empirical == pytest.approx(r.average_stall_per_access, rel=1e-2)
