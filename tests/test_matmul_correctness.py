"""End-to-end correctness: every mode computes the exact product matrix
on the simulated machine (the micro engine), including with non-identity
A and full-width random data."""

import numpy as np
import pytest

from repro.machine import ExecutionMode, PASMMachine, PrototypeConfig
from repro.programs import build_matmul, expected_product, generate_matrices
from repro.programs.loader import run_matmul
from repro.utils.rng import make_rng

CFG = PrototypeConfig()


def run_mode(mode, n, p, *, m=0, a=None, b=None, cfg=CFG):
    if a is None or b is None:
        a_, b_ = generate_matrices(n, b_bits=16)
        a = a if a is not None else a_
        b = b if b is not None else b_
    machine = PASMMachine(cfg, partition_size=p)
    bundle = build_matmul(
        mode, n, p, added_multiplies=m, device_symbols=cfg.device_symbols()
    )
    return run_matmul(machine, bundle, a, b)


@pytest.mark.parametrize("n", [4, 8])
def test_serial_product(n):
    a, b = generate_matrices(n, b_bits=16)
    run = run_mode(ExecutionMode.SERIAL, n, 1, a=a, b=b)
    assert np.array_equal(run.product, expected_product(a, b))


def test_serial_nonidentity_a():
    n = 8
    rng = make_rng(7, "serial-nonid")
    a = rng.integers(0, 1 << 16, size=(n, n), dtype=np.uint16)
    b = rng.integers(0, 1 << 16, size=(n, n), dtype=np.uint16)
    run = run_mode(ExecutionMode.SERIAL, n, 1, a=a, b=b)
    assert np.array_equal(run.product, expected_product(a, b))


@pytest.mark.parametrize("mode", [ExecutionMode.MIMD, ExecutionMode.SMIMD])
@pytest.mark.parametrize("n,p", [(4, 4), (8, 4), (8, 8)])
def test_parallel_product(mode, n, p):
    a, b = generate_matrices(n, b_bits=16)
    run = run_mode(mode, n, p, a=a, b=b)
    assert np.array_equal(run.product, expected_product(a, b)), mode


@pytest.mark.parametrize("n,p", [(4, 4), (8, 4), (8, 8)])
def test_simd_product(n, p):
    a, b = generate_matrices(n, b_bits=16)
    run = run_mode(ExecutionMode.SIMD, n, p, a=a, b=b)
    assert np.array_equal(run.product, expected_product(a, b))


def test_full_machine_all_sixteen_pes():
    """The whole prototype at once: n=16 on all 16 PEs (4 MC groups in
    lockstep SIMD, every network port active)."""
    n, p = 16, 16
    a, b = generate_matrices(n, b_bits=16)
    for mode in (ExecutionMode.SIMD, ExecutionMode.SMIMD):
        run = run_mode(mode, n, p, a=a, b=b)
        assert np.array_equal(run.product, expected_product(a, b)), mode


def test_parallel_nonidentity_a():
    """The rotation algorithm is data-independent: random A too."""
    n, p = 8, 4
    rng = make_rng(9, "par-nonid")
    a = rng.integers(0, 1 << 16, size=(n, n), dtype=np.uint16)
    b = rng.integers(0, 1 << 16, size=(n, n), dtype=np.uint16)
    for mode in (ExecutionMode.MIMD, ExecutionMode.SMIMD, ExecutionMode.SIMD):
        run = run_mode(mode, n, p, a=a, b=b)
        assert np.array_equal(run.product, expected_product(a, b)), mode


def test_added_multiplies_do_not_change_result():
    n, p = 8, 4
    a, b = generate_matrices(n, b_bits=16)
    want = expected_product(a, b)
    for mode in (ExecutionMode.SIMD, ExecutionMode.SMIMD):
        run = run_mode(mode, n, p, m=3)
        assert np.array_equal(run.product, want), mode


def test_overflow_ignored():
    """16-bit accumulation wraps silently, as the paper specifies."""
    n = 4
    a = np.full((n, n), 0xFFFF, dtype=np.uint16)
    b = np.full((n, n), 0xFFFF, dtype=np.uint16)
    run = run_mode(ExecutionMode.SERIAL, n, 1, a=a, b=b)
    assert np.array_equal(run.product, expected_product(a, b))


def test_a_columns_return_home():
    """After n rotation steps every A column is back where it started."""
    n, p = 8, 4
    a, b = generate_matrices(n, b_bits=16)
    run = run_mode(ExecutionMode.MIMD, n, p, a=a, b=b)
    layout = run.bundle.layout
    for lp in range(p):
        mem = run.machine.pe(lp).memory
        for v in range(layout.cols):
            col = mem.read_words(layout.a_col_addr(v), n)
            assert np.array_equal(col, a[:, layout.vp0(lp) + v])


def test_mimd_and_smimd_same_product_different_time():
    n, p = 8, 4
    a, b = generate_matrices(n, b_bits=16)
    run_m = run_mode(ExecutionMode.MIMD, n, p, a=a, b=b)
    run_s = run_mode(ExecutionMode.SMIMD, n, p, a=a, b=b)
    assert np.array_equal(run_m.product, run_s.product)
    # Polling costs more than barrier sync (the S/MIMD motivation).
    assert run_m.result.cycles > run_s.result.cycles
