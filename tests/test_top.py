"""``pasm-top`` rendering: pure functions over canned documents.

No sockets here — the dashboard's fetch loop is exercised end-to-end
in ``test_fleet_health.py``; these tests pin the rendering itself.
"""

from repro.tools.top import metric_points, render_frame, sparkline


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero_renders_low(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_flat_nonzero_renders_mid(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3 and line[0] not in ("▁", "█")

    def test_monotone_rise_ends_high(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_width_clamps_to_most_recent(self):
        line = sparkline(list(range(100)), width=8)
        assert len(line) == 8


def instance_doc():
    return {
        "interval_s": 5.0,
        "instance": "alpha",
        "series": {
            "pasm_serve_requests_total{status=200}": {
                "kind": "counter",
                "points": [[10.0, 50.0], [15.0, 100.0]],
                "rate": [[15.0, 10.0]],
            },
            "pasm_serve_requests_total{status=429}": {
                "kind": "counter",
                "points": [[10.0, 0.0], [15.0, 10.0]],
                "rate": [[15.0, 2.0]],
            },
            "pasm_serve_queue_depth": {
                "kind": "gauge",
                "points": [[10.0, 3.0], [15.0, 7.0]],
            },
            "pasm_serve_job_latency_seconds{quantile=0.95}": {
                "kind": "quantile",
                "points": [[15.0, 0.25]],
            },
            "pasm_process_resident_memory_bytes": {
                "kind": "gauge",
                "points": [[15.0, 96.0 * 1024 * 1024]],
            },
        },
    }


class TestMetricPoints:
    def test_sums_rates_across_label_series(self):
        pts = metric_points(instance_doc(), "pasm_serve_requests_total",
                            field="rate")
        assert pts == [[15.0, 12.0]]

    def test_label_predicate_filters(self):
        pts = metric_points(
            instance_doc(), "pasm_serve_requests_total", field="rate",
            where={"status": lambda s: s == "429" or s.startswith("5")},
        )
        assert pts == [[15.0, 2.0]]

    def test_max_combiner_for_quantiles(self):
        pts = metric_points(instance_doc(),
                            "pasm_serve_job_latency_seconds", how="max",
                            where={"quantile": "0.95"})
        assert pts == [[15.0, 0.25]]

    def test_unknown_metric_is_empty(self):
        assert metric_points(instance_doc(), "nope_total") == []


class TestRenderFrame:
    def test_instance_frame_shows_panel_rows(self):
        frame = render_frame(instance_doc(), None, source="http://a:1",
                             clock=lambda: 0.0)
        assert "pasm-top" in frame and "alpha" in frame
        assert "req/s" in frame and "12.0" in frame
        assert "queue" in frame and "p95 lat" in frame
        # RSS is exported in bytes but displayed in MB.
        assert "rss MB" in frame and "96" in frame
        assert "100663296" not in frame

    def test_firing_alert_is_bannered(self):
        alerts = {"alerts": [
            {"slo": "error-ratio", "state": "firing", "measured": 0.4,
             "target": 0.05, "burn": {"fast": 8.0, "slow": 8.0}},
            {"slo": "latency-p95", "state": "ok"},
        ]}
        frame = render_frame(instance_doc(), alerts, clock=lambda: 0.0)
        assert "ALERTS FIRING: 1" in frame
        assert "error-ratio" in frame and "latency-p95" not in frame

    def test_no_alerts_line_when_quiet(self):
        frame = render_frame(instance_doc(), {"alerts": []},
                             clock=lambda: 0.0)
        assert "alerts: none firing" in frame

    def test_router_frame_shows_fleet_and_instances(self):
        router_doc = {
            "fleet": dict(instance_doc(), instances=2),
            "instances": {
                "http://a:1": instance_doc(),
                "http://b:2": {"error": "http 404"},
            },
        }
        alerts = {"firing": [
            {"slo": "queue-depth", "instance": "http://a:1",
             "measured": 60.0, "target": 48.0, "burn": {}},
        ]}
        frame = render_frame(router_doc, alerts, source="http://r:3",
                             clock=lambda: 0.0)
        assert "fleet of 2" in frame
        assert "instances:" in frame
        assert "http://a:1" in frame and "http://b:2" in frame
        assert "http 404" in frame
        assert "queue-depth @ http://a:1" in frame
