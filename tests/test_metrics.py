"""Edge-case coverage for :mod:`repro.perf.metrics` rendering.

The ``/metrics`` endpoint is scraped by machines; the exposition
format's corner cases (escaping, empty summaries, concurrent writers)
must hold exactly, not just on the happy path.
"""

import threading

import pytest

from repro.perf.metrics import SUMMARY_QUANTILES, MetricsRegistry


class TestLabelEscaping:
    def test_quotes_and_backslashes(self):
        registry = MetricsRegistry()
        registry.inc("m_total", outcome='say "hi"', path="C:\\tmp")
        text = registry.render()
        assert r'outcome="say \"hi\""' in text
        assert r'path="C:\\tmp"' in text
        # The line still has exactly one value field at the end.
        [line] = [l for l in text.splitlines() if l.startswith("m_total{")]
        assert line.endswith(" 1")

    def test_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.inc("m_total", reason="line one\nline two")
        text = registry.render()
        assert r"line one\nline two" in text
        # No label value may introduce a raw line break.
        assert all(
            l.startswith(("#", "m_total")) for l in text.splitlines() if l
        )

    def test_label_values_stringified_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("m_total", b=2, a=1)
        assert 'm_total{a="1",b="2"} 1' in registry.render()


class TestEmptySummaries:
    def test_described_summary_renders_type_only(self):
        registry = MetricsRegistry()
        registry.describe("latency_seconds", "summary", "how slow")
        text = registry.render()
        assert "# TYPE latency_seconds summary" in text
        assert "# HELP latency_seconds how slow" in text
        # No quantile/count/sum lines before the first observation —
        # and crucially, no crash computing quantiles of nothing.
        assert "quantile" not in text
        assert "latency_seconds_count" not in text

    def test_quantile_of_empty_series_is_zero(self):
        registry = MetricsRegistry()
        assert registry.quantile("never_observed", 0.5) == 0.0
        assert registry.samples("never_observed") == []

    def test_single_observation_renders_all_quantiles(self):
        registry = MetricsRegistry()
        registry.observe("latency_seconds", 2.5)
        text = registry.render()
        for q in SUMMARY_QUANTILES:
            assert f'quantile="{q}"' in text
        assert "latency_seconds_count 1" in text
        assert "latency_seconds_sum 2.5" in text

    def test_window_bound_truncates_samples_not_count(self):
        registry = MetricsRegistry()
        for i in range(10):
            registry.observe("s", float(i), window=4)
        assert registry.samples("s") == [6.0, 7.0, 8.0, 9.0]
        assert "s_count 10" in registry.render()


class TestConcurrency:
    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 500

        def hammer(k):
            for _ in range(per_thread):
                registry.inc("hits_total", worker=str(k % 2))

        threads = [threading.Thread(target=hammer, args=(k,))
                   for k in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.total("hits_total") == threads_n * per_thread
        assert registry.value("hits_total",
                              worker="0") == threads_n * per_thread / 2

    def test_concurrent_observe_and_render(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def observer():
            i = 0
            while not stop.is_set():
                registry.observe("lat", float(i % 7))
                i += 1

        def renderer():
            try:
                for _ in range(50):
                    text = registry.render()
                    assert text.endswith("\n")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=observer) for _ in range(3)]
        render_thread = threading.Thread(target=renderer)
        for t in workers:
            t.start()
        render_thread.start()
        render_thread.join()
        stop.set()
        for t in workers:
            t.join()
        assert not errors


class TestKindSafety:
    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError):
            registry.set_gauge("x", 1.0)

    def test_negative_counter_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("x", -1.0)
